"""Admission-control: golden pins, policy units, spec validation, reporting.

The concurrency golden pin asserts that routing the legacy ``max_concurrency``
gate through the admission registry is a pure refactor: every metric of a
gated run must be bit-for-bit identical whichever way the gate is declared.
"""

from __future__ import annotations

import pytest

from repro.agents import AgentConfig
from repro.api import (
    AdmissionSpec,
    ArrivalSpec,
    ExperimentSpec,
    MeasurementSpec,
    WeightedWorkload,
    run_experiment,
)
from repro.serving.admission import (
    ADMIT,
    DELAY,
    REJECT,
    ConcurrencyAdmission,
    SloShedAdmission,
    TokenBucketAdmission,
    available_admission_policies,
    build_admission_policy,
)


def agent_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        agent="react",
        workload="hotpotqa",
        model="8b",
        agent_config=AgentConfig(max_iterations=5),
        max_decode_chunk=8,
        seed=0,
        arrival=ArrivalSpec(process="poisson", qps=3.0, num_requests=10, task_pool_size=8),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


MIXTURE = dict(
    workloads=(
        WeightedWorkload(agent="chatbot", workload="sharegpt", weight=0.6, name="chat"),
        WeightedWorkload(agent="react", workload="hotpotqa", weight=0.4, name="agent"),
    ),
    agent_config=AgentConfig(max_iterations=5),
    arrival=ArrivalSpec(process="poisson", qps=4.0, num_requests=16, task_pool_size=8),
    max_decode_chunk=8,
    seed=0,
)


class TestConcurrencyGoldenPin:
    """admission='concurrency' must reproduce max_concurrency bit-for-bit."""

    METRICS = (
        "mean_latency",
        "p95_latency",
        "energy_wh",
        "throughput_qps",
        "duration",
        "kv_average_bytes",
        "preemptions",
        "prefix_cache_hit_rate",
        "num_queued",
        "mean_admission_delay",
        "p95_admission_delay",
    )

    def test_registry_gate_is_bit_for_bit_identical(self):
        legacy = run_experiment(agent_spec(max_concurrency=2)).serving
        registry = run_experiment(
            agent_spec(admission=AdmissionSpec(policy="concurrency", max_concurrency=2))
        ).serving
        for metric in self.METRICS:
            assert getattr(registry, metric) == getattr(legacy, metric), metric
        assert registry.latencies == legacy.latencies
        assert registry.admission_delays == legacy.admission_delays
        assert legacy.num_queued > 0  # the gate actually engaged

    def test_string_shorthand_inherits_spec_cap(self):
        legacy = run_experiment(agent_spec(max_concurrency=2)).serving
        shorthand = run_experiment(
            agent_spec(max_concurrency=2, admission="concurrency")
        ).serving
        assert shorthand.latencies == legacy.latencies
        assert shorthand.admission_delays == legacy.admission_delays

    def test_unlimited_policy_matches_open_door(self):
        open_door = run_experiment(agent_spec()).serving
        unlimited = run_experiment(agent_spec(admission="unlimited")).serving
        assert unlimited.latencies == open_door.latencies
        assert unlimited.num_rejected == 0
        assert unlimited.rejection_rate == 0.0


class TestTokenBucketRefill:
    """Refill timing of the token bucket, request by request."""

    def test_burst_then_rate(self):
        bucket = TokenBucketAdmission(rate_qps=2.0, burst=3)
        # The bucket starts full: the burst is admitted back to back.
        assert [bucket.decide(0.0, None) for _ in range(3)] == [ADMIT] * 3
        # Empty bucket: delayed, next token half a second out (rate 2/s).
        assert bucket.decide(0.0, None) == DELAY
        assert bucket.retry_at(0.0) == pytest.approx(0.5)
        # At the refill instant exactly one token has accrued.
        assert bucket.decide(0.5, None) == ADMIT
        assert bucket.decide(0.5, None) == DELAY

    def test_refill_caps_at_burst(self):
        bucket = TokenBucketAdmission(rate_qps=10.0, burst=2)
        for _ in range(2):
            assert bucket.decide(0.0, None) == ADMIT
        # A long quiet period refills to burst, not beyond.
        assert [bucket.decide(100.0, None) for _ in range(3)] == [ADMIT, ADMIT, DELAY]

    def test_reject_mode_sheds_instead_of_queueing(self):
        bucket = TokenBucketAdmission(rate_qps=1.0, burst=1, overload_action="reject")
        assert bucket.decide(0.0, None) == ADMIT
        assert bucket.decide(0.0, None) == REJECT
        assert bucket.retry_at(0.0) is None  # reject mode never re-offers

    def test_retry_chain_is_rate_spaced(self):
        bucket = TokenBucketAdmission(rate_qps=4.0, burst=1)
        assert bucket.decide(0.0, None) == ADMIT
        retries = []
        now = 0.0
        for _ in range(3):
            now = bucket.retry_at(now)
            retries.append(now)
            assert bucket.decide(now, None) == ADMIT
        assert retries == [pytest.approx(0.25 * (i + 1)) for i in range(3)]

    def test_end_to_end_delay_spacing(self):
        # Rate 0.5/s, burst 1 against a 4-request burst: completions are
        # spaced at least ~2s apart once the bucket empties.
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            max_decode_chunk=8,
            arrival=ArrivalSpec(
                process="uniform", qps=8.0, num_requests=4, task_pool_size=4
            ),
            admission=AdmissionSpec(policy="token-bucket", rate_qps=0.5, burst=1),
        )
        result = run_experiment(spec).serving
        assert result.num_completed == 4
        assert result.num_rejected == 0
        delays = sorted(result.admission_delays)
        assert delays[0] == 0.0  # the burst token
        # Admissions are refill-spaced exactly 1/rate = 2s apart while the
        # arrivals land 1/qps = 0.125s apart, so the k-th queued request
        # waits k * (2 - 0.125) seconds.
        for index, delay in enumerate(delays[1:], start=1):
            assert delay == pytest.approx((2.0 - 0.125) * index)


class TestSloShedHysteresis:
    """Synthetic burst against the shed gate's enter/exit thresholds."""

    def _policy(self) -> SloShedAdmission:
        return SloShedAdmission(
            slo_p95_s=10.0, window_s=100.0, enter_factor=1.0, exit_factor=0.5
        )

    def test_engages_above_slo_and_holds_until_exit_threshold(self):
        policy = self._policy()
        # Healthy completions: projection below the SLO, gate open.
        policy.observe(1.0, None, 5.0, 100)
        assert policy.decide(1.0, None) == ADMIT
        assert not policy.shed_active
        # A latency spike pushes the rolling p95 over the SLO: gate sheds.
        for time in (2.0, 3.0, 4.0):
            policy.observe(time, None, 20.0, 100)
        assert policy.decide(4.0, None) == REJECT
        assert policy.shed_active
        # Recovery to just under the SLO is NOT enough -- hysteresis holds
        # the gate closed until the projection falls below slo * exit_factor.
        for time in range(5, 40):
            policy.observe(float(time), None, 6.0, 100)
        cleared = 104.0  # spike completions age out of the 100s window
        assert policy.rolling_p95(cleared) < 10.0  # p95 back under the SLO
        assert policy.rolling_p95(cleared) > 5.0   # ...but above the exit bar
        assert policy.decide(cleared, None) == REJECT
        assert policy.shed_active
        # Only once the projection clears slo * exit_factor does it reopen.
        reopened = 150.0  # every 6s completion has aged out too
        assert policy.decide(reopened, None) == ADMIT
        assert not policy.shed_active
        # The transition log shows exactly one engage/disengage cycle.
        assert [active for _, active in policy.transitions] == [True, False]

    def test_protect_class_filters_observations(self):
        policy = SloShedAdmission(slo_p95_s=1.0, window_s=50.0, protect_class="chat")
        policy.observe(0.0, "agent", 99.0, 100)  # unprotected class: ignored
        assert policy.decide(1.0, "agent") == ADMIT
        policy.observe(2.0, "chat", 99.0, 100)  # protected class violates
        assert policy.decide(3.0, "agent") == REJECT

    def test_mixture_sheds_agent_class_only(self):
        spec = ExperimentSpec(
            measurement=MeasurementSpec(class_slos=(("chat", 6.0),)),
            admission=AdmissionSpec(
                per_class=(
                    (
                        "agent",
                        AdmissionSpec(
                            policy="slo-shed", protect_class="chat", window_s=20.0
                        ),
                    ),
                )
            ),
            **MIXTURE,
        )
        outcome = run_experiment(spec)
        door = outcome.admission_stats
        assert door["chat"].rejected == 0
        assert door["agent"].rejected > 0
        assert outcome.num_rejected == door["agent"].rejected
        assert outcome.rejection_rate > 0.0
        assert outcome.shed_tokens > 0.0
        # Per-class reporting carries the SLO and the door accounting.
        chat = outcome.class_stats["chat"]
        assert chat.slo_p95_s == 6.0
        assert chat.slo_attainment is not None
        agent = outcome.class_stats["agent"]
        assert agent.rejected == door["agent"].rejected
        assert agent.rejection_rate > 0.0
        # Rejections are attributed to the pool that would have served them.
        pool = outcome.pool_stats["default"]
        assert pool.rejected_requests == outcome.num_rejected
        assert pool.shed_tokens == pytest.approx(outcome.shed_tokens)


class TestAdmissionSpecValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            AdmissionSpec(policy="bouncer")
        assert "slo-shed" in available_admission_policies()

    def test_token_bucket_requires_rate(self):
        with pytest.raises(ValueError, match="rate_qps"):
            AdmissionSpec(policy="token-bucket")

    def test_rate_only_for_token_bucket(self):
        with pytest.raises(ValueError, match="does not take rate_qps"):
            AdmissionSpec(policy="unlimited", rate_qps=1.0)

    def test_hysteresis_factors_ordered(self):
        with pytest.raises(ValueError, match="exit_factor"):
            AdmissionSpec(policy="slo-shed", slo_p95_s=1.0, exit_factor=1.5)

    def test_per_class_cannot_nest(self):
        inner = AdmissionSpec(
            policy="unlimited",
            per_class=(("chat", AdmissionSpec()),),
        )
        with pytest.raises(ValueError, match="cannot nest"):
            AdmissionSpec(per_class=(("agent", inner),))

    def test_concurrency_needs_a_cap_somewhere(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            agent_spec(admission="concurrency")

    def test_cap_cannot_be_set_twice(self):
        with pytest.raises(ValueError, match="not both"):
            agent_spec(
                max_concurrency=2,
                admission=AdmissionSpec(policy="concurrency", max_concurrency=3),
            )

    def test_slo_shed_needs_an_slo(self):
        with pytest.raises(ValueError, match="needs an SLO"):
            agent_spec(admission="slo-shed")

    def test_slo_shed_inherits_measurement_slo(self):
        spec = agent_spec(
            admission="slo-shed", measurement=MeasurementSpec(slo_p95_s=5.0)
        )
        assert spec.admission.policy == "slo-shed"

    def test_admission_requires_serving_arrival(self):
        with pytest.raises(ValueError, match="serving arrival"):
            agent_spec(
                arrival=ArrivalSpec(process="single", num_requests=4),
                admission="unlimited",
            )

    def test_per_class_label_must_exist(self):
        with pytest.raises(ValueError, match="unknown traffic class"):
            ExperimentSpec(
                admission=AdmissionSpec(
                    per_class=(("voice", AdmissionSpec(policy="unlimited")),)
                ),
                **MIXTURE,
            )

    def test_class_slos_label_must_exist(self):
        with pytest.raises(ValueError, match="unknown traffic class"):
            ExperimentSpec(
                measurement=MeasurementSpec(class_slos=(("voice", 1.0),)),
                **MIXTURE,
            )

    def test_round_trip_serialisation(self):
        spec = ExperimentSpec(
            measurement=MeasurementSpec(warmup_requests=2, class_slos=(("chat", 2.5),)),
            admission=AdmissionSpec(
                policy="token-bucket",
                rate_qps=2.0,
                burst=4,
                per_class=(
                    (
                        "agent",
                        AdmissionSpec(
                            policy="slo-shed", protect_class="chat", exit_factor=0.7
                        ),
                    ),
                ),
            ),
            **MIXTURE,
        )
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_build_admission_policy_unknown_name(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            build_admission_policy("bouncer")

    def test_custom_registered_policy_is_constructed(self):
        from repro.serving.admission import (
            ADMISSION_POLICIES,
            AdmissionPolicy,
            ADMIT,
            register_admission_policy,
        )

        @register_admission_policy
        class EveryOther(AdmissionPolicy):
            name = "every-other"

            def __init__(self):
                self.count = 0

            def decide(self, now, traffic_class):
                self.count += 1
                return ADMIT

        try:
            policy = build_admission_policy("every-other")
            assert isinstance(policy, EveryOther)
            assert policy.decide(0.0, None) == ADMIT
        finally:
            ADMISSION_POLICIES.pop("every-other", None)


class TestWarmupValidation:
    """warmup_requests can never silently produce an empty measured window."""

    def test_spec_build_rejects_oversized_warmup(self):
        with pytest.raises(ValueError, match="warmup_requests must be smaller"):
            ExperimentSpec(
                arrival=ArrivalSpec(process="poisson", qps=1.0, num_requests=4),
                measurement=MeasurementSpec(warmup_requests=7),
            )

    def test_spec_build_rejects_warmup_equal_to_requests(self):
        with pytest.raises(ValueError, match="warmup_requests must be smaller"):
            ExperimentSpec(
                arrival=ArrivalSpec(process="single", num_requests=3),
                measurement=MeasurementSpec(warmup_requests=3),
            )

    def test_serve_rejects_plans_shorter_than_warmup(self):
        # The legacy AgentServer.serve(plan) path takes arbitrary plans that
        # bypass spec-level validation; the driver must refuse rather than
        # silently measure an empty window.
        from repro.api import SystemBuilder, ServingDriver
        from repro.serving.loadgen import poisson_plan

        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            max_decode_chunk=8,
            arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=9),
            measurement=MeasurementSpec(warmup_requests=3),
        )
        system = SystemBuilder(spec).build()
        driver = ServingDriver(system)
        short = poisson_plan(
            system.workload, qps=2.0, num_requests=2,
            stream=system.stream.substream("plan/short"), task_pool_size=2,
        )
        with pytest.raises(ValueError, match="warmup_requests"):
            driver.serve(short)

    def test_characterization_rejects_explicit_tasks_shorter_than_warmup(self):
        # Explicit task lists bypass the arrival.num_requests validation.
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            max_decode_chunk=8,
            arrival=ArrivalSpec(process="single", num_requests=10),
            measurement=MeasurementSpec(warmup_requests=5),
        )
        from repro.api import SystemBuilder

        tasks = SystemBuilder(spec).build().workload.sample_tasks(3)
        with pytest.raises(ValueError, match="warmup_requests"):
            run_experiment(spec, tasks=tasks)

    def test_characterization_honours_warmup(self):
        base = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            max_decode_chunk=8,
            arrival=ArrivalSpec(process="single", num_requests=5),
        )
        full = run_experiment(base)
        warm = run_experiment(
            base.with_overrides(measurement=MeasurementSpec(warmup_requests=2))
        )
        assert warm.num_requests == 3
        assert warm.latencies == full.latencies[2:]
