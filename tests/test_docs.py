"""Documentation freshness: generated docs must match the live registries."""

from __future__ import annotations

import importlib.util
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_registry_docs", REPO_ROOT / "scripts" / "gen_registry_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegistryDocs:
    def test_registries_md_is_fresh(self):
        generator = _load_generator()
        committed = (DOCS / "REGISTRIES.md").read_text()
        assert committed == generator.render(), (
            "docs/REGISTRIES.md is stale; regenerate with: "
            "PYTHONPATH=src python scripts/gen_registry_docs.py"
        )

    def test_check_mode_passes_when_fresh(self):
        generator = _load_generator()
        assert generator.main(["--check"]) == 0

    def test_every_registry_entry_is_documented(self):
        from repro.llm.scheduler import available_scheduler_policies
        from repro.serving.admission import available_admission_policies
        from repro.serving.cluster import available_router_policies
        from repro.serving.forecast import available_forecasters
        from repro.serving.shapes import available_shapes

        text = (DOCS / "REGISTRIES.md").read_text()
        for name in (
            *available_scheduler_policies(),
            *available_router_policies(),
            *available_admission_policies(),
            *available_forecasters(),
            *available_shapes(),
        ):
            assert f"| `{name}` |" in text, f"registry entry {name!r} undocumented"


class TestHandWrittenDocs:
    def test_doc_suite_exists(self):
        for name in ("ARCHITECTURE.md", "SPECS.md", "METRICS.md", "REGISTRIES.md"):
            assert (DOCS / name).is_file(), f"docs/{name} missing"

    def test_relative_links_resolve(self):
        # Every intra-repo markdown link in docs/ and README.md must point at
        # a real file; external links (scheme://) are out of scope.
        link = re.compile(r"\[[^\]]+\]\(([^)#]+)(?:#[^)]*)?\)")
        for source in (*DOCS.glob("*.md"), REPO_ROOT / "README.md"):
            for target in link.findall(source.read_text()):
                target = target.strip()
                if "://" in target or not target:
                    continue
                base = source.parent if source.parent != REPO_ROOT else REPO_ROOT
                resolved = (base / target).resolve()
                assert resolved.exists(), f"{source.name}: broken link to {target}"

    def test_specs_doc_covers_every_spec_type(self):
        text = (DOCS / "SPECS.md").read_text()
        for spec_name in (
            "ExperimentSpec",
            "ArrivalSpec",
            "MeasurementSpec",
            "AdmissionSpec",
            "PoolSpec",
            "WeightedWorkload",
            "AutoscalerSpec",
            "TenantSpec",
            "SessionSpec",
            "StudySpec",
        ):
            assert f"## {spec_name}" in text, (
                f"docs/SPECS.md does not document {spec_name}"
            )

    def test_metrics_doc_matches_resolvable_names(self):
        # Every plain metric name documented must actually resolve on a
        # ResultSet (the doc is a contract, not a wish list).
        from repro.api import ResultSet

        text = (DOCS / "METRICS.md").read_text()
        names = re.findall(r"^\| `([a-z_0-9]+)` \|", text, flags=re.MULTILINE)
        assert len(names) > 20
        for name in names:
            assert hasattr(ResultSet, name), f"documented metric {name!r} unknown"
