"""Serving-scale behaviour: concurrency gating, knee hardening, replica scaling."""

from __future__ import annotations

import pytest

from repro.agents import AgentConfig
from repro.api import ArrivalSpec, ExperimentSpec, run_experiment, run_sweep
from repro.serving import ServingConfig, ServingResult, run_at_qps
from repro.serving.sweep import QpsSweepResult


def agent_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        agent="react",
        workload="hotpotqa",
        model="8b",
        agent_config=AgentConfig(max_iterations=5),
        max_decode_chunk=8,
        seed=0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestMaxConcurrencyEnforcement:
    ARRIVAL = ArrivalSpec(process="poisson", qps=3.0, num_requests=10, task_pool_size=8)

    def test_unlimited_concurrency_never_queues(self):
        result = run_experiment(agent_spec(arrival=self.ARRIVAL)).serving
        assert result.num_queued == 0
        assert result.mean_admission_delay == 0.0
        assert len(result.admission_delays) == 10

    def test_gate_queues_excess_requests_and_reports_delay(self):
        result = run_experiment(agent_spec(arrival=self.ARRIVAL, max_concurrency=2)).serving
        assert result.num_completed == 10
        assert result.num_queued > 0
        assert result.mean_admission_delay > 0.0
        assert result.p95_admission_delay >= result.mean_admission_delay

    def test_tighter_gate_increases_latency(self):
        open_door = run_experiment(agent_spec(arrival=self.ARRIVAL)).serving
        gated = run_experiment(agent_spec(arrival=self.ARRIVAL, max_concurrency=1)).serving
        assert gated.mean_latency > open_door.mean_latency
        assert gated.mean_admission_delay > open_door.mean_admission_delay

    def test_legacy_serving_config_gate_is_enforced(self):
        config = ServingConfig(
            agent="react",
            benchmark="hotpotqa",
            agent_config=AgentConfig(max_iterations=5),
            max_decode_chunk=8,
            max_concurrency=2,
        )
        result = run_at_qps(config, qps=3.0, num_requests=10, task_pool_size=8)
        assert result.num_queued > 0
        assert result.mean_admission_delay > 0.0

    def test_reused_server_reports_per_run_admission_delays(self):
        from repro.serving import AgentServer, poisson_plan

        config = ServingConfig(
            agent="chatbot",
            benchmark="sharegpt",
            max_decode_chunk=8,
            max_concurrency=1,
        )
        server = AgentServer(config)
        plan = lambda tag: poisson_plan(
            server.workload, qps=4.0, num_requests=4,
            stream=server.stream.substream(f"plan/{tag}"), task_pool_size=4,
        )
        first = server.serve(plan("a"))
        second = server.serve(plan("b"))
        assert len(first.admission_delays) == 4
        assert len(second.admission_delays) == 4


class TestPeakThroughputHardening:
    def _result(self, qps: float, p95: float, completed: int = 10) -> ServingResult:
        result = ServingResult(
            config=ServingConfig(), offered_qps=qps, num_requests=completed, duration=1.0
        )
        # Fabricate a latency distribution with the desired p95 by reusing a
        # single value; ServingResult derives p95 from results' latencies.
        result.results = [_FakeRun(p95) for _ in range(completed)]
        return result

    def test_zero_baseline_does_not_collapse_threshold(self):
        sweep = QpsSweepResult(config=ServingConfig())
        sweep.results = [self._result(0.5, 0.0), self._result(1.0, 2.0), self._result(2.0, 3.0)]
        # Seed behaviour: threshold = 0 * 3 = 0 -> only the zero-latency point
        # qualifies.  Hardened behaviour: baseline falls back to the smallest
        # positive p95 (2.0), threshold 6.0, so every point qualifies.
        assert sweep.peak_throughput() == pytest.approx(10.0 / 1.0)

    def test_all_zero_latencies_count_completed_points(self):
        sweep = QpsSweepResult(config=ServingConfig())
        sweep.results = [self._result(0.5, 0.0), self._result(1.0, 0.0)]
        assert sweep.peak_throughput() > 0.0

    def test_explicit_slo_still_respected(self):
        sweep = QpsSweepResult(config=ServingConfig())
        sweep.results = [self._result(0.5, 1.0), self._result(1.0, 9.0)]
        assert sweep.peak_throughput(latency_slo_s=2.0) == pytest.approx(10.0)

    def test_empty_sweep_is_zero(self):
        assert QpsSweepResult(config=ServingConfig()).peak_throughput() == 0.0

    def test_warmup_opens_measured_window_at_boundary(self):
        from repro.api import MeasurementSpec

        arrival = ArrivalSpec(process="poisson", qps=2.0, num_requests=8, task_pool_size=6)
        base = ExperimentSpec(
            agent="chatbot", workload="sharegpt", arrival=arrival, max_decode_chunk=8
        )
        full = run_experiment(base).serving
        warm = run_experiment(
            base.with_overrides(measurement=MeasurementSpec(warmup_requests=3))
        ).serving
        # Same simulation, smaller measured window: duration and energy must
        # shrink, so derived rates are not diluted by the warm-up period.
        assert warm.duration < full.duration
        assert warm.energy_wh < full.energy_wh
        assert warm.num_requests == 5
        assert warm.num_completed == 5
        assert warm.latencies == full.latencies[3:]

    def test_warmup_trimmed_sweep_still_reports_peak(self):
        from repro.api import MeasurementSpec

        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            measurement=MeasurementSpec(warmup_requests=2),
            arrival=ArrivalSpec(process="single", num_requests=8, task_pool_size=6),
            max_decode_chunk=8,
        )
        sweep = run_sweep(spec, (1.0, 2.0))
        # Warm-up trimming shrinks both completions and the issued count, so
        # the 95%-completion knee gate still passes on healthy runs.
        for result in sweep.results:
            assert result.num_requests == 6
            assert result.num_completed == 6
        assert sweep.peak_throughput() > 0.0


class _FakeRun:
    """Minimal stand-in for AgentRunResult (only e2e_latency is read)."""

    def __init__(self, latency: float):
        self.e2e_latency = latency
        self.answer_correct = True


class TestReplicaScaling:
    """Fig-11-style sweeps: 4 replicas must out-sustain 1 for every router."""

    QPS_GRID = (2.0, 8.0, 16.0)

    @classmethod
    def _template(cls) -> ExperimentSpec:
        return ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            model="8b",
            arrival=ArrivalSpec(process="single", num_requests=40, task_pool_size=10),
            seed=0,
            max_decode_chunk=8,
        )

    @classmethod
    def _single_replica_peak(cls) -> float:
        if not hasattr(cls, "_cached_single_peak"):
            sweep = run_sweep(cls._template(), cls.QPS_GRID)
            cls._cached_single_peak = sweep.peak_throughput()
        return cls._cached_single_peak

    @pytest.mark.parametrize("router", ["round-robin", "least-loaded", "prefix-affinity"])
    def test_four_replicas_beat_one(self, router):
        sweep = run_sweep(self._template().with_overrides(replicas=4, router=router), self.QPS_GRID)
        single_peak = self._single_replica_peak()
        assert single_peak > 0
        assert sweep.peak_throughput() > single_peak
        # Every load point completes.
        for result in sweep.results:
            assert result.num_completed == result.num_requests
            assert result.num_replicas == 4
