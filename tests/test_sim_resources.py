"""Unit tests for simulation resources (Resource, Store)."""

from __future__ import annotations

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_request_granted_immediately_when_free(self, env):
        resource = Resource(env, capacity=1)

        def proc():
            request = resource.request()
            yield request
            return env.now

        assert env.run(env.process(proc())) == pytest.approx(0.0)

    def test_requests_queue_when_full(self, env):
        resource = Resource(env, capacity=1)
        grants = []

        def holder():
            request = resource.request()
            yield request
            yield env.timeout(5.0)
            resource.release(request)

        def waiter():
            request = resource.request()
            yield request
            grants.append(env.now)
            resource.release(request)

        env.process(holder())
        env.process(waiter())
        env.run()
        assert grants == [pytest.approx(5.0)]

    def test_count_tracks_users(self, env):
        resource = Resource(env, capacity=2)

        def proc():
            first = resource.request()
            yield first
            second = resource.request()
            yield second
            assert resource.count == 2
            resource.release(first)
            assert resource.count == 1
            resource.release(second)
            return resource.count

        assert env.run(env.process(proc())) == 0

    def test_fifo_granting_order(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def holder():
            request = resource.request()
            yield request
            yield env.timeout(1.0)
            resource.release(request)

        def waiter(name, delay):
            yield env.timeout(delay)
            request = resource.request()
            yield request
            order.append(name)
            yield env.timeout(0.5)
            resource.release(request)

        env.process(holder())
        env.process(waiter("first", 0.1))
        env.process(waiter("second", 0.2))
        env.run()
        assert order == ["first", "second"]

    def test_release_of_queued_request_removes_it(self, env):
        resource = Resource(env, capacity=1)

        def proc():
            held = resource.request()
            yield held
            queued = resource.request()
            resource.release(queued)     # cancel before it was ever granted
            resource.release(held)
            return len(resource.queue), resource.count

        queue_len, count = env.run(env.process(proc()))
        assert queue_len == 0
        assert count == 0

    def test_context_manager_releases(self, env):
        resource = Resource(env, capacity=1)

        def proc():
            with resource.request() as request:
                yield request
                assert resource.count == 1
            return resource.count

        assert env.run(env.process(proc())) == 0


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def proc():
            store.put("item")
            value = yield store.get()
            return value

        assert env.run(env.process(proc())) == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer():
            value = yield store.get()
            return value, env.now

        def producer():
            yield env.timeout(4.0)
            store.put("late-item")

        consumer_process = env.process(consumer())
        env.process(producer())
        value, when = env.run(consumer_process)
        assert value == "late-item"
        assert when == pytest.approx(4.0)

    def test_fifo_ordering_of_items(self, env):
        store = Store(env)

        def proc():
            for index in range(3):
                store.put(index)
            values = []
            for _ in range(3):
                values.append((yield store.get()))
            return values

        assert env.run(env.process(proc())) == [0, 1, 2]

    def test_fifo_ordering_of_getters(self, env):
        store = Store(env)
        received = []

        def consumer(name):
            value = yield store.get()
            received.append((name, value))

        def producer():
            yield env.timeout(1.0)
            store.put("a")
            store.put("b")

        env.process(consumer("first"))
        env.process(consumer("second"))
        env.process(producer())
        env.run()
        assert received == [("first", "a"), ("second", "b")]

    def test_len_reflects_buffered_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
