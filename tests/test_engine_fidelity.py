"""Tests for the engine-fidelity features: chunked prefill and speculation.

Chunked prefill (``EngineConfig.prefill_chunk_tokens``) slices prompts
into per-iteration token budgets co-scheduled with running decodes;
speculative decoding (``EngineConfig.speculative``) drafts several tokens
per verify step and keeps the accepted run.  Both default off and must
leave the default engine bit-for-bit unchanged (the golden-pinned suites
enforce that); these tests cover the features when they are *on*:
chunk-boundary accounting, KV-pressure preemption of partial prefills,
mid-chunk arrivals, acceptance-draw determinism, and the API plumbing.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, PoolSpec, SpeculativeSpec
from repro.api.builder import SystemBuilder
from repro.llm import (
    EngineConfig,
    KVCacheConfig,
    LLMClient,
    LLMEngine,
    PrefixCache,
    Prompt,
    SamplingParams,
    Scheduler,
    SchedulerConfig,
    StepKind,
)
from repro.llm.energy import PowerState
from repro.llm.hardware import ClusterSpec
from repro.llm.models import LLAMA_3_1_8B
from repro.llm.request import LLMRequest, RequestState
from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer
from repro.sim import Environment

TOKENIZER = SyntheticTokenizer()


def make_request(prompt_tokens: int, output_tokens: int = 16, stream: str = "req") -> LLMRequest:
    prompt = Prompt()
    prompt.append(TOKENIZER.span(SegmentKind.USER, stream, prompt_tokens))
    return LLMRequest(prompt=prompt, sampling=SamplingParams(output_tokens=output_tokens))


def make_scheduler(
    num_blocks: int = 256,
    prefill_chunk_tokens: int = 64,
    **scheduler_kwargs,
) -> Scheduler:
    config = KVCacheConfig(
        block_size=16,
        num_blocks=num_blocks,
        bytes_per_block=16 * LLAMA_3_1_8B.kv_bytes_per_token,
        enable_prefix_caching=True,
    )
    return Scheduler(
        SchedulerConfig(**scheduler_kwargs),
        PrefixCache(config),
        prefill_chunk_tokens=prefill_chunk_tokens,
    )


def tiny_kv_engine_config(num_blocks: int = 12, **engine_kwargs) -> EngineConfig:
    """An 8B engine whose KV cache holds only ``num_blocks`` blocks."""
    model = LLAMA_3_1_8B
    target_bytes = model.kv_bytes_per_token * 16 * num_blocks
    utilization = (model.weight_bytes + 2.0e9 + target_bytes) / 40e9
    return EngineConfig(
        model=model,
        cluster=ClusterSpec(gpu_memory_utilization=utilization),
        **engine_kwargs,
    )


def run_single(env, engine, prompt_tokens=200, output_tokens=64, stream="a"):
    client = LLMClient(env, engine)
    prompt = Prompt()
    prompt.append(engine.tokenizer.span(SegmentKind.USER, stream, prompt_tokens))

    def proc():
        result = yield client.generate(prompt, output_tokens=output_tokens)
        return result

    return env.run(env.process(proc()))


class TestChunkedScheduler:
    def test_chunk_budget_limits_tokens_per_step(self):
        scheduler = make_scheduler(prefill_chunk_tokens=64)
        request = make_request(200)
        scheduler.add_request(request)
        step = scheduler.schedule()
        assert step.kind is StepKind.MIXED
        (item,) = step.prefills
        assert item.new_tokens == 64
        assert not item.last_chunk
        assert request in scheduler.prefilling
        assert scheduler.num_running == 0

    def test_chunks_walk_prompt_to_completion(self):
        scheduler = make_scheduler(prefill_chunk_tokens=64)
        request = make_request(200)
        scheduler.add_request(request)
        chunks = []
        # Drive the scheduler the way the engine does: advance the computed
        # watermark after each step and hand completed chunks back.
        while scheduler.prefilling or scheduler.num_waiting:
            step = scheduler.schedule()
            (item,) = step.prefills
            request.num_computed_tokens += item.new_tokens
            chunks.append(item.new_tokens)
            scheduler.on_chunks_complete(step.prefills)
        assert chunks == [64, 64, 64, 8]
        assert request.num_computed_tokens == 200
        assert scheduler.num_running == 1
        decode = scheduler.schedule()
        assert decode.kind is StepKind.DECODE

    def test_decode_reservation_shrinks_chunk_budget(self):
        # One running decode against max_num_batched_tokens=33 leaves a
        # 32-token prefill budget, under the 64-token chunk setting.
        scheduler = make_scheduler(prefill_chunk_tokens=64, max_num_batched_tokens=33)
        short = make_request(32, stream="short")
        scheduler.add_request(short)
        first = scheduler.schedule()
        assert first.prefills[0].last_chunk
        short.num_computed_tokens += first.prefills[0].new_tokens
        scheduler.on_chunks_complete(first.prefills)

        long = make_request(200, stream="long")
        scheduler.add_request(long)
        step = scheduler.schedule()
        assert step.kind is StepKind.MIXED
        assert len(step.decodes) == 1
        (item,) = step.prefills
        assert item.new_tokens == 32


class TestChunkedEngine:
    def test_chunked_prefill_emits_all_tokens_via_mixed_steps(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig(prefill_chunk_tokens=64))
        result = run_single(env, engine, prompt_tokens=200, output_tokens=48)
        assert result.output_tokens == 48
        assert result.prompt_tokens == 200
        kinds = {record.kind for record in engine.step_records}
        assert "mixed" in kinds
        assert engine.kv_cache.active_blocks() == 0
        assert engine.total_prefill_tokens == 200

    def test_chunked_runtime_lands_in_mixed_bucket(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig(prefill_chunk_tokens=64))
        run_single(env, engine, prompt_tokens=500, output_tokens=16)
        breakdown = engine.runtime_breakdown()
        assert breakdown["mixed"] > 0

    def test_mid_chunk_arrival_coscheduled_with_inflight_prefill(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig(prefill_chunk_tokens=64))
        client = LLMClient(env, engine)

        def proc(stream, prompt_tokens, delay):
            prompt = Prompt()
            prompt.append(engine.tokenizer.span(SegmentKind.USER, stream, prompt_tokens))
            yield env.timeout(delay)
            result = yield client.generate(prompt, output_tokens=16)
            return result

        # b arrives while a is mid-way through its chunked prefill.
        a = env.process(proc("a", 2000, 0.0))
        b = env.process(proc("b", 200, 0.05))
        env.run()
        assert a.value.output_tokens == 16
        assert b.value.output_tokens == 16
        # Both prompts made progress inside one mixed step at least once.
        assert any(
            record.kind == "mixed" and record.batch_size >= 2
            for record in engine.step_records
        )
        assert engine.kv_cache.active_blocks() == 0

    def test_chunked_prefill_under_kv_pressure_preempts_and_recovers(self):
        env = Environment()
        engine = LLMEngine(
            env, tiny_kv_engine_config(num_blocks=12, prefill_chunk_tokens=32)
        )
        client = LLMClient(env, engine)

        def proc(stream, prompt_tokens, output_tokens, delay):
            prompt = Prompt()
            prompt.append(engine.tokenizer.span(SegmentKind.USER, stream, prompt_tokens))
            yield env.timeout(delay)
            result = yield client.generate(prompt, output_tokens=output_tokens)
            return result

        # a grows from 4 to 8 blocks while decoding; b's 96-token prompt
        # (6 blocks) chunk-prefills into the shrinking remainder, so its
        # partial prefill must be preempted and later restarted.
        a = env.process(proc("a", 64, 64, 0.0))
        b = env.process(proc("b", 96, 16, 0.1))
        env.run()
        assert a.value.output_tokens == 64
        assert b.value.output_tokens == 16
        assert engine.scheduler.preemption_count >= 1
        assert engine.kv_cache.active_blocks() == 0

    def test_chunking_removes_prefill_hol_blocking(self):
        def hol(config: EngineConfig) -> float:
            env = Environment()
            engine = LLMEngine(env, config)
            client = LLMClient(env, engine)

            def proc(stream, prompt_tokens, output_tokens, delay):
                prompt = Prompt()
                prompt.append(
                    engine.tokenizer.span(SegmentKind.USER, stream, prompt_tokens)
                )
                yield env.timeout(delay)
                yield client.generate(prompt, output_tokens=output_tokens)

            env.process(proc("decoding", 100, 400, 0.0))
            env.process(proc("late-long-prompt", 4000, 16, 1.0))
            env.run()
            return engine.prefill_hol_block_s

        assert hol(EngineConfig()) > 0
        assert hol(EngineConfig(prefill_chunk_tokens=256)) == 0.0


class TestSpeculative:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SpeculativeSpec(acceptance=-0.1)
        with pytest.raises(ValueError):
            SpeculativeSpec(acceptance=1.5)
        with pytest.raises(ValueError):
            SpeculativeSpec(draft_ratio=0.0)
        with pytest.raises(ValueError):
            SpeculativeSpec(num_speculative_tokens=0)

    def test_draws_are_deterministic_per_request(self):
        spec = SpeculativeSpec()
        first = spec.acceptance_stream(7)
        second = spec.acceptance_stream(7)
        draws_a = [spec.draw_accepted(first) for _ in range(64)]
        draws_b = [spec.draw_accepted(second) for _ in range(64)]
        assert draws_a == draws_b
        other = spec.acceptance_stream(8)
        assert draws_a != [spec.draw_accepted(other) for _ in range(64)]

    def test_draw_bounds_and_mean_match_analytic_expectation(self):
        spec = SpeculativeSpec(acceptance=0.7, num_speculative_tokens=4)
        stream = spec.acceptance_stream(0)
        draws = [spec.draw_accepted(stream) for _ in range(4000)]
        assert all(0 <= draw <= 4 for draw in draws)
        expected = spec.expected_tokens_per_step() - 1.0  # accepted, sans bonus
        assert sum(draws) / len(draws) == pytest.approx(expected, rel=0.05)

    def test_speculative_engine_is_deterministic(self):
        from repro.llm.request import reset_request_ids

        def once():
            # Acceptance substreams are keyed by request id, which is a
            # process-global counter -- reset it the way run_experiment does
            # so both runs see the same ids.
            reset_request_ids()
            env = Environment()
            engine = LLMEngine(env, EngineConfig(speculative=SpeculativeSpec()))
            result = run_single(env, engine, output_tokens=100)
            return result.e2e_latency, engine.spec_sequence_steps, engine.spec_accepted_tokens

        assert once() == once()

    def test_speculative_faster_and_books_draft_energy(self):
        env_a = Environment()
        baseline_engine = LLMEngine(env_a, EngineConfig())
        baseline = run_single(env_a, baseline_engine, output_tokens=200)
        env_b = Environment()
        engine = LLMEngine(env_b, EngineConfig(speculative=SpeculativeSpec()))
        result = run_single(env_b, engine, output_tokens=200)
        assert result.output_tokens == 200
        assert result.e2e_latency < baseline.e2e_latency
        assert engine.energy.seconds_by_state[PowerState.DRAFT] > 0
        assert engine.energy.joules_by_state[PowerState.DRAFT] > 0
        assert baseline_engine.energy.joules_by_state[PowerState.DRAFT] == 0

    def test_speculative_token_count_exact_for_odd_lengths(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig(speculative=SpeculativeSpec()))
        result = run_single(env, engine, output_tokens=37)
        assert result.output_tokens == 37
        assert engine.kv_cache.active_blocks() == 0


class TestEngineFidelityStudy:
    def test_mini_study_headline_and_accessors(self):
        from repro.analysis import engine_fidelity_study

        study = engine_fidelity_study(
            qps=8.0,
            num_requests=10,
            chunk_values=(None, 128),
            max_num_seqs=2,
            task_pool_size=4,
        )
        rows = study.rows()
        assert len(rows) == 4  # 2 chunk budgets x speculation off/on
        assert "chat_p95_s" in rows[0]

        # Chunking zeroes head-of-line blocking; speculation books draft
        # energy and accepts at least some draft tokens.
        assert study.hol_block_s("128", "off") == 0.0
        trade = study.speculation_tradeoff()
        assert trade["draft_j"] > 0
        assert trade["accepted"] > 0

        advantage = study.chunking_advantage("128")
        assert set(advantage) == {"chat_p95_s", "hol_s", "replica_s"}

        assert study.frontier()  # non-empty, queryable
        assert "Engine fidelity" in study.format()
        assert "Pareto frontier" in study.format_frontier()


class TestConfigAndPlumbing:
    def test_engine_config_rejects_decode_chunk_combos(self):
        with pytest.raises(ValueError):
            EngineConfig(max_decode_chunk=8, prefill_chunk_tokens=64)
        with pytest.raises(ValueError):
            EngineConfig(max_decode_chunk=8, speculative=SpeculativeSpec())
        with pytest.raises(ValueError):
            EngineConfig(prefill_chunk_tokens=0)

    def test_experiment_spec_rejects_decode_chunk_combos(self):
        with pytest.raises(ValueError):
            ExperimentSpec(max_decode_chunk=4, prefill_chunk_tokens=256)
        with pytest.raises(ValueError):
            ExperimentSpec(max_decode_chunk=4, speculative=SpeculativeSpec())

    def test_spec_round_trips_through_dict(self):
        spec = ExperimentSpec(
            prefill_chunk_tokens=256,
            speculative=SpeculativeSpec(acceptance=0.5, num_speculative_tokens=2),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_builder_pool_overrides(self):
        spec = ExperimentSpec(
            pools=(
                PoolSpec(name="fast", prefill_chunk_tokens=128),
                PoolSpec(name="spec", speculative=SpeculativeSpec()),
                PoolSpec(name="plain"),
            ),
            prefill_chunk_tokens=512,
        )
        builder = SystemBuilder(spec)
        fast, spec_pool, plain = spec.pools
        assert builder.engine_config(fast).prefill_chunk_tokens == 128
        assert builder.engine_config(spec_pool).speculative == SpeculativeSpec()
        assert builder.engine_config(plain).prefill_chunk_tokens == 512
        assert builder.engine_config(plain).speculative is None
