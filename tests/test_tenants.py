"""Multi-tenant population model, tenanted plans, and fairness accounting.

Covers the tenant vocabulary end to end: spec validation and
serialization, lazy Zipf sampling (determinism, rank bounds, skew
ordering, O(distinct-seen) memory on a million-user population), plan
labeling across poisson/uniform/shaped/mixture generators -- including
the golden pins: untenanted plans are bit-for-bit the pre-tenant plans,
and tenant draws never perturb arrival times or task picks -- plus the
per-arrival label integrity of superposed shaped mixtures, the
vtc/oit-throttle behaviours, and the fairness report maths.
"""

from __future__ import annotations

import math

import pytest

from repro.serving.admission import (
    ADMIT,
    DELAY,
    REJECT,
    AdmissionController,
    OITThrottleAdmission,
    available_admission_policies,
    build_admission_policy,
)
from repro.serving.loadgen import mixture_plan, poisson_plan, shaped_plan, uniform_plan
from repro.serving.shapes import ConstantShape, SquareWaveShape
from repro.serving.tenants import (
    Tenant,
    TenantPopulation,
    TenantSpec,
    jain_index,
    sample_tenants,
    tenant_fairness,
)
from repro.sim.distributions import RandomStream
from repro.workloads import create_workload


@pytest.fixture(scope="module")
def workload():
    return create_workload("sharegpt", seed=0)


@pytest.fixture(scope="module")
def other_workload():
    return create_workload("hotpotqa", seed=0)


def _tenant(rank: int, population: int = 100) -> Tenant:
    return Tenant(user=f"u{rank}", app="app0", rank=rank, population=population)


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec()
        assert spec.num_users == 10_000
        assert spec.skew == 1.2
        assert spec.num_apps == 10

    def test_validation(self):
        with pytest.raises(ValueError, match="num_users"):
            TenantSpec(num_users=0)
        with pytest.raises(ValueError, match="skew"):
            TenantSpec(skew=-0.1)
        with pytest.raises(ValueError, match="num_apps"):
            TenantSpec(num_apps=0)

    def test_round_trip(self):
        from dataclasses import asdict

        spec = TenantSpec(num_users=1_000_000, skew=1.6, num_apps=50)
        assert TenantSpec.from_dict(asdict(spec)) == spec


class TestZipfSampling:
    def test_deterministic(self):
        spec = TenantSpec(num_users=1000, skew=1.3)
        a = sample_tenants(spec, 50, RandomStream(7, "t"))
        b = sample_tenants(spec, 50, RandomStream(7, "t"))
        assert a == b

    def test_rank_bounds(self):
        spec = TenantSpec(num_users=50, skew=1.1)
        tenants = sample_tenants(spec, 500, RandomStream(1, "t"))
        assert all(1 <= tenant.rank <= 50 for tenant in tenants)

    def test_skew_concentrates_on_low_ranks(self):
        # Heavier skew -> rank 1 (the whale) owns a larger share of draws.
        def whale_share(skew: float) -> float:
            spec = TenantSpec(num_users=10_000, skew=skew)
            tenants = sample_tenants(spec, 2000, RandomStream(3, "t"))
            return sum(1 for tenant in tenants if tenant.rank == 1) / len(tenants)

        assert whale_share(1.6) > whale_share(0.8) + 0.1

    def test_near_uniform_at_zero_skew(self):
        spec = TenantSpec(num_users=10, skew=0.0)
        tenants = sample_tenants(spec, 2000, RandomStream(5, "t"))
        counts = [0] * 10
        for tenant in tenants:
            counts[tenant.rank - 1] += 1
        assert min(counts) > 100  # every rank drawn regularly

    def test_million_user_population_stays_lazy(self):
        population = TenantPopulation(TenantSpec(num_users=1_000_000, skew=1.2))
        stream = RandomStream(11, "t")
        drawn = [population.sample(stream) for _ in range(300)]
        # Memory is the memo of tenants actually seen, never O(population).
        assert population.distinct_seen == len({tenant.rank for tenant in drawn})
        assert population.distinct_seen <= 300

    def test_memoised_identity(self):
        population = TenantPopulation(TenantSpec(num_users=100, skew=1.5))
        assert population.tenant_for_rank(3) is population.tenant_for_rank(3)

    def test_app_assignment_seed_independent(self):
        spec = TenantSpec(num_users=1000, skew=1.2, num_apps=7)
        a = TenantPopulation(spec).tenant_for_rank(42)
        b = TenantPopulation(spec).tenant_for_rank(42)
        assert a.app == b.app

    def test_decile(self):
        assert _tenant(1, population=100).decile == 0
        assert _tenant(10, population=100).decile == 0
        assert _tenant(11, population=100).decile == 1
        assert _tenant(100, population=100).decile == 9
        assert _tenant(1, population=1).decile == 0


class TestTenantedPlans:
    def test_poisson_plan_labels_every_arrival(self, workload):
        plan = poisson_plan(
            workload, qps=2.0, num_requests=20, stream=RandomStream(1, "p"),
            tenants=TenantSpec(num_users=1000, skew=1.4),
        )
        assert plan.tenants is not None
        assert len(plan.tenants) == 20
        assert all(isinstance(tenant, Tenant) for tenant in plan.tenants)

    def test_untenanted_plan_bit_for_bit_identical(self, workload):
        # Golden pin: the tenants substream only exists when a spec is
        # present, so untenanted plans consume exactly the legacy draws.
        legacy = poisson_plan(workload, qps=2.0, num_requests=30, stream=RandomStream(9, "p"))
        tenanted = poisson_plan(
            workload, qps=2.0, num_requests=30, stream=RandomStream(9, "p"),
            tenants=TenantSpec(num_users=100, skew=1.2),
        )
        assert legacy.tenants is None
        assert legacy.tenant_labels() == [None] * 30
        assert tenanted.arrival_times == legacy.arrival_times
        assert [t.task_id for t in tenanted.tasks] == [t.task_id for t in legacy.tasks]

    def test_uniform_plan_tenants(self, workload):
        plan = uniform_plan(
            workload, qps=4.0, num_requests=12, stream=RandomStream(2, "u"),
            tenants=TenantSpec(num_users=500, skew=1.0),
        )
        assert plan.tenants is not None and len(plan.tenants) == 12

    def test_tenanted_plan_requires_stream(self, workload):
        with pytest.raises(ValueError, match="RandomStream"):
            uniform_plan(
                workload, qps=4.0, num_requests=4,
                tenants=TenantSpec(num_users=10),
            )

    def test_shaped_plan_tenants(self, workload):
        shape = SquareWaveShape(
            base_level=0.5, burst_level=3.0, period_s=10.0, burst_start_s=2.0,
            burst_s=4.0,
        )
        plan = shaped_plan(
            workload, qps=3.0, shape=shape, num_requests=25,
            stream=RandomStream(4, "s"), task_pool_size=8,
            tenants=TenantSpec(num_users=1000, skew=1.3),
        )
        assert plan.tenants is not None and len(plan.tenants) == len(plan)

    def test_shaped_golden_pin(self, workload):
        # Shaped untenanted plans are unchanged by the tenants parameter path.
        shape = SquareWaveShape(
            base_level=0.5, burst_level=2.0, period_s=8.0, burst_start_s=2.0,
            burst_s=2.0,
        )
        a = shaped_plan(
            workload, qps=3.0, shape=shape, num_requests=20,
            stream=RandomStream(6, "s"), task_pool_size=8,
        )
        b = shaped_plan(
            workload, qps=3.0, shape=shape, num_requests=20,
            stream=RandomStream(6, "s"), task_pool_size=8,
            tenants=TenantSpec(num_users=100, skew=1.2),
        )
        assert a.tenants is None
        assert b.arrival_times == a.arrival_times
        assert [t.task_id for t in b.tasks] == [t.task_id for t in a.tasks]


class TestMixtureTenantIntegrity:
    def test_unshaped_mixture_tenants(self, workload, other_workload):
        plan = mixture_plan(
            [("chat", workload, 0.6), ("agent", other_workload, 0.4)],
            qps=4.0, num_requests=30, stream=RandomStream(3, "m"),
            task_pool_size=8,
            tenants=TenantSpec(num_users=1000, skew=1.4),
        )
        assert plan.tenants is not None
        assert len(plan.tenants) == 30
        assert all(isinstance(tenant, Tenant) for tenant in plan.tenants)

    def test_mixture_golden_pin(self, workload, other_workload):
        components = [("chat", workload, 0.6), ("agent", other_workload, 0.4)]
        legacy = mixture_plan(
            components, qps=4.0, num_requests=30, stream=RandomStream(8, "m"),
            task_pool_size=8,
        )
        tenanted = mixture_plan(
            components, qps=4.0, num_requests=30, stream=RandomStream(8, "m"),
            task_pool_size=8, tenants=TenantSpec(num_users=100, skew=1.2),
        )
        assert legacy.tenants is None
        assert tenanted.arrival_times == legacy.arrival_times
        assert tenanted.traffic_classes == legacy.traffic_classes
        assert [t.task_id for t in tenanted.tasks] == [
            t.task_id for t in legacy.tasks
        ]

    def test_partially_tenanted_mixture(self, workload, other_workload):
        # A per-class spec on one class only: the other class stays None.
        plan = mixture_plan(
            [
                ("chat", workload, 0.6, None, TenantSpec(num_users=100, skew=1.2)),
                ("agent", other_workload, 0.4),
            ],
            qps=4.0, num_requests=40, stream=RandomStream(5, "m"), task_pool_size=8,
        )
        assert plan.tenants is not None
        for label, tenant in zip(plan.traffic_classes, plan.tenants):
            if label == "chat":
                assert isinstance(tenant, Tenant)
            else:
                assert tenant is None

    def test_superposed_shaped_mixture_keeps_labels_aligned(
        self, workload, other_workload
    ):
        # The heap merge of per-class shaped processes must keep BOTH the
        # traffic-class column and the tenant column aligned with arrival
        # times.  Tenanted classes draw from disjoint populations via
        # per-class substreams, and each class's own plan (same seed) must
        # reappear as the per-class subsequence of the superposed plan.
        chat_spec = TenantSpec(num_users=97, skew=1.1)
        agent_spec = TenantSpec(num_users=1009, skew=1.5)
        shape = SquareWaveShape(
            base_level=0.5, burst_level=3.0, period_s=12.0, burst_start_s=4.0,
            burst_s=4.0,
        )
        plan = mixture_plan(
            [
                ("chat", workload, 0.6, None, chat_spec),
                ("agent", other_workload, 0.4, shape, agent_spec),
            ],
            qps=5.0, num_requests=40, stream=RandomStream(12, "m"),
            task_pool_size=8, shape=ConstantShape(),
        )
        assert plan.traffic_classes is not None and plan.tenants is not None
        assert len(plan.traffic_classes) == len(plan) == len(plan.tenants)
        assert sorted(plan.arrival_times) == plan.arrival_times
        assert set(plan.traffic_classes) == {"chat", "agent"}
        for label, tenant in zip(plan.traffic_classes, plan.tenants):
            assert isinstance(tenant, Tenant)
            # Disjoint populations: the tenant's population size betrays
            # which class's spec drew it, so misaligned columns would fail.
            expected = chat_spec if label == "chat" else agent_spec
            assert tenant.population == expected.num_users

    def test_superposition_preserves_per_class_arrival_subsequences(
        self, workload, other_workload
    ):
        shape = SquareWaveShape(
            base_level=0.5, burst_level=3.0, period_s=12.0, burst_start_s=4.0,
            burst_s=4.0,
        )
        plan = mixture_plan(
            [("chat", workload, 0.7), ("agent", other_workload, 0.3, shape)],
            qps=5.0, num_requests=30, stream=RandomStream(2, "m"),
            task_pool_size=8, shape=ConstantShape(),
        )
        by_class = {"chat": [], "agent": []}
        for time, label in zip(plan.arrival_times, plan.traffic_classes):
            by_class[label].append(time)
        for times in by_class.values():
            assert times == sorted(times)
            assert len(times) > 0


class TestFairnessReport:
    def test_jain_index(self):
        assert jain_index([]) == 1.0
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_untenanted_run_reports_none(self):
        assert tenant_fairness({}, {}) is None

    def test_contender_floor(self):
        whale, tail, brief = _tenant(1), _tenant(50), _tenant(99)
        stats = tenant_fairness(
            {whale: 900.0, tail: 100.0, brief: 0.0},
            {whale: (10, 0), tail: (4, 0), brief: (1, 0)},
        )
        assert stats.num_tenants == 3
        assert stats.num_contenders == 2  # the single-request tenant is not starved
        assert stats.max_min_ratio == pytest.approx(9.0)

    def test_starved_contender_is_inf(self):
        whale, tail = _tenant(1), _tenant(50)
        stats = tenant_fairness(
            {whale: 900.0}, {whale: (10, 0), tail: (5, 0)}
        )
        assert math.isinf(stats.max_min_ratio)

    def test_single_contender_ratio_is_one(self):
        whale = _tenant(1)
        stats = tenant_fairness({whale: 900.0}, {whale: (10, 0)})
        assert stats.max_min_ratio == 1.0

    def test_decile_throttle_rates(self):
        hot, cold = _tenant(1, population=100), _tenant(95, population=100)
        stats = tenant_fairness(
            {hot: 10.0, cold: 10.0},
            {hot: (10, 5), cold: (4, 0)},
        )
        rates = stats.decile_throttle_rates()
        assert rates[0] == pytest.approx(0.5)
        assert rates[9] == pytest.approx(0.0)
        assert rates[4] is None  # no offers in that decile
        assert stats.throttle_rate == pytest.approx(5 / 14)


class _Probe:
    """Stub load probe with settable pressure signals."""

    def __init__(self, kv: float = 0.0, pending: float = 0.0):
        self.kv = kv
        self.pending = pending

    def kv_utilization(self) -> float:
        return self.kv

    def pending_per_active_replica(self) -> float:
        return self.pending


class TestOITThrottle:
    def test_registered(self):
        assert "oit-throttle" in available_admission_policies()

    def test_requires_a_rate(self):
        with pytest.raises(ValueError, match="user_rpm"):
            OITThrottleAdmission(user_rpm=None, app_rpm=None)

    def test_never_bites_without_pressure(self):
        policy = OITThrottleAdmission(
            user_rpm=1.0, window_s=60.0, load_probe=_Probe(kv=0.0, pending=0.0)
        )
        tenant = _tenant(1)
        for _ in range(20):
            assert policy.decide(0.0, None, tenant) == ADMIT
            policy.admit(0.0, None, tenant)
            policy.release(0.0, None, tenant)
        assert policy.throttled == 0

    def test_bites_under_kv_pressure(self):
        probe = _Probe(kv=0.95)
        policy = OITThrottleAdmission(user_rpm=2.0, window_s=60.0, load_probe=probe)
        tenant = _tenant(1)
        for _ in range(2):  # fill the per-user window
            assert policy.decide(0.0, None, tenant) == ADMIT
            policy.admit(0.0, None, tenant)
            policy.release(0.0, None, tenant)
        assert policy.decide(1.0, None, tenant) == REJECT
        assert policy.throttled == 1
        # The window expires: admitted again.
        assert policy.decide(61.0, None, tenant) == ADMIT

    def test_queue_pressure_also_triggers(self):
        probe = _Probe(pending=10.0)
        policy = OITThrottleAdmission(
            user_rpm=1.0, window_s=60.0, queue_threshold=4.0, load_probe=probe
        )
        tenant = _tenant(2)
        policy.admit(0.0, None, tenant)
        policy.release(0.0, None, tenant)
        assert policy.decide(1.0, None, tenant) == REJECT

    def test_in_progress_interaction_never_severed(self):
        probe = _Probe(kv=1.0)
        policy = OITThrottleAdmission(user_rpm=1.0, window_s=60.0, load_probe=probe)
        tenant = _tenant(3)
        policy.admit(0.0, None, tenant)  # still in flight
        # Over the RPM window AND under pressure, but the tenant has an
        # in-progress interaction: follow-up calls are always admitted.
        assert policy.decide(1.0, None, tenant) == ADMIT
        policy.release(1.0, None, tenant)
        assert policy.decide(2.0, None, tenant) == REJECT

    def test_app_rpm_budget(self):
        probe = _Probe(kv=0.95)
        policy = OITThrottleAdmission(
            user_rpm=None, app_rpm=2.0, window_s=60.0, load_probe=probe
        )
        a = Tenant(user="u1", app="app0", rank=1, population=10)
        b = Tenant(user="u2", app="app0", rank=2, population=10)
        for tenant in (a, b):  # two users drain the shared app budget
            policy.admit(0.0, None, tenant)
            policy.release(0.0, None, tenant)
        c = Tenant(user="u3", app="app0", rank=3, population=10)
        assert policy.decide(1.0, None, c) == REJECT

    def test_untenanted_traffic_always_admitted(self):
        policy = OITThrottleAdmission(user_rpm=1.0, load_probe=_Probe(kv=1.0))
        assert policy.decide(0.0, None, None) == ADMIT

    def test_delay_mode(self):
        probe = _Probe(kv=0.95)
        policy = OITThrottleAdmission(
            user_rpm=1.0, window_s=60.0, overload_action="delay", load_probe=probe
        )
        tenant = _tenant(4)
        policy.admit(0.0, None, tenant)
        policy.release(0.0, None, tenant)
        assert policy.decide(1.0, None, tenant) == DELAY
        assert policy.retry_at(1.0) == pytest.approx(1.0 + 60.0 / 4.0)

    def test_builder(self):
        policy = build_admission_policy("oit-throttle", user_rpm=30.0, app_rpm=600.0)
        assert isinstance(policy, OITThrottleAdmission)
        assert policy.user_rpm == 30.0
        assert policy.app_rpm == 600.0

    def test_controller_tenant_accounting(self):
        probe = _Probe(kv=0.95)
        controller = AdmissionController(
            OITThrottleAdmission(user_rpm=1.0, window_s=60.0, load_probe=probe)
        )
        tenant = _tenant(5)
        assert controller.offer(0.0, "chat", tenant) == ADMIT
        controller.on_complete(0.5, "chat", latency=0.5, output_tokens=10, tenant=tenant)
        assert controller.offer(1.0, "chat", tenant) == REJECT
        counts = controller.tenant_counts()
        assert counts[tenant] == (2, 1)
        # Legacy two-argument offers still work (untenanted traffic).
        assert controller.offer(2.0, "chat") == ADMIT
        assert controller.tenant_counts() == counts


class TestTenantedExperiments:
    """End-to-end: TenantSpec through the spec/builder/runner stack."""

    def _spec(self, **overrides):
        from repro.api.spec import AdmissionSpec, ArrivalSpec, ExperimentSpec

        kwargs = dict(
            agent="chatbot",
            workload="sharegpt",
            scheduler="vtc",
            admission=AdmissionSpec(policy="oit-throttle", user_rpm=30.0),
            arrival=ArrivalSpec(
                process="poisson", qps=4.0, num_requests=10, task_pool_size=6,
                tenants=TenantSpec(num_users=1_000_000, skew=1.5, num_apps=20),
            ),
            max_decode_chunk=8,
        )
        kwargs.update(overrides)
        return ExperimentSpec(**kwargs)

    def test_tenanted_run_reports_fairness(self):
        from repro.api.runners import run_experiment

        outcome = run_experiment(self._spec())
        assert outcome.tenant_stats is not None
        assert outcome.tenant_stats.offered == 10
        assert outcome.jain_fairness is not None
        assert outcome.served_token_ratio is not None
        assert outcome.metric("jain_fairness") == outcome.jain_fairness
        summary = outcome.summary()
        assert "served_token_ratio" in summary

    def test_untenanted_run_reports_none(self):
        from repro.api.runners import run_experiment
        from repro.api.spec import ArrivalSpec

        outcome = run_experiment(
            self._spec(
                scheduler="fcfs",
                admission=None,
                arrival=ArrivalSpec(
                    process="poisson", qps=4.0, num_requests=6, task_pool_size=6
                ),
            )
        )
        assert outcome.tenant_stats is None
        assert outcome.served_token_ratio is None

    def test_spec_round_trip(self):
        from repro.api.spec import ExperimentSpec

        spec = self._spec()
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt.arrival.tenants == spec.arrival.tenants
        assert rebuilt.admission.user_rpm == 30.0

    def test_tenant_spec_rejected_for_sequential(self):
        from repro.api.spec import ArrivalSpec

        with pytest.raises(ValueError, match="tenants"):
            ArrivalSpec(
                process="sequential", num_requests=4,
                tenants=TenantSpec(num_users=10),
            )

    def test_study_axis_serialization(self):
        from repro.api.spec import ArrivalSpec, ExperimentSpec
        from repro.api.study import StudyAxis, StudySpec

        study = StudySpec(
            base=ExperimentSpec(
                agent="chatbot", workload="sharegpt",
                arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=4),
            ),
            axes=(
                StudyAxis(
                    name="skew",
                    field="arrival.tenants",
                    values=(
                        TenantSpec(num_users=100, skew=1.0),
                        TenantSpec(num_users=100, skew=1.6),
                    ),
                    labels=("mild", "heavy"),
                ),
            ),
        )
        rebuilt = StudySpec.from_dict(study.to_dict())
        assert rebuilt.axes[0].values == study.axes[0].values

    def test_decile_metric_resolution(self):
        from repro.api.runners import run_experiment
        from repro.api.study import resolve_metric

        outcome = run_experiment(self._spec())
        rates = outcome.tenant_stats.decile_throttle_rates()
        for decile, rate in enumerate(rates):
            resolved = resolve_metric(
                outcome, f"tenant_throttle_decile:{decile}", missing_ok=True
            )
            assert resolved == rate
        with pytest.raises(ValueError, match="decile"):
            resolve_metric(outcome, "tenant_throttle_decile:11")
