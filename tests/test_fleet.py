"""Tests for the elastic heterogeneous fleet: pool specs, mixtures, autoscaling.

Covers the fleet vocabulary of the unified API (PoolSpec / WeightedWorkload /
AutoscalerSpec), the mixed-traffic acceptance scenario (two pools + weighted
chatbot/agent mixture + autoscaler -> per-pool and per-class metrics with
replica-seconds), the noisy decode-length predictor, and the engine's cached
window aggregates.  Legacy single-pool bit-for-bit identity is pinned
separately in ``tests/test_api_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.api import (
    ArrivalSpec,
    AutoscalerSpec,
    ExperimentSpec,
    PoolSpec,
    WeightedWorkload,
    run_experiment,
)
from repro.llm import (
    DecodeLengthPredictor,
    EngineConfig,
    LLMEngine,
    Prompt,
    SamplingParams,
    Scheduler,
    SchedulerConfig,
)
from repro.llm.request import LLMRequest
from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer
from repro.sim import Environment

TOKENIZER = SyntheticTokenizer()


def make_request(
    prompt_tokens: int = 64, output_tokens: int = 16, stream: str = "req"
) -> LLMRequest:
    prompt = Prompt()
    prompt.append(TOKENIZER.span(SegmentKind.USER, stream, prompt_tokens))
    return LLMRequest(prompt=prompt, sampling=SamplingParams(output_tokens=output_tokens))


def mixed_fleet_spec(**overrides) -> ExperimentSpec:
    """Two pools + weighted chatbot/agent mixture + autoscaler."""
    base = dict(
        pools=(
            PoolSpec(
                name="chat",
                model="8b",
                replicas=1,
                router="least-loaded",
                traffic_classes=("chat",),
            ),
            PoolSpec(
                name="agent",
                model="8b",
                replicas=2,
                scheduler="sjf-by-predicted-decode",
                router="prefix-affinity",
                traffic_classes=("agent",),
            ),
        ),
        workloads=(
            WeightedWorkload(agent="chatbot", workload="sharegpt", weight=0.6, name="chat"),
            WeightedWorkload(agent="react", workload="hotpotqa", weight=0.4, name="agent"),
        ),
        autoscaler=AutoscalerSpec(
            pool="chat",
            min_replicas=1,
            max_replicas=3,
            check_interval_s=1.0,
            warmup_s=2.0,
            scale_up_pending_per_replica=1.5,
            scale_down_pending_per_replica=0.25,
        ),
        arrival=ArrivalSpec(process="poisson", qps=3.0, num_requests=16, task_pool_size=8),
        max_decode_chunk=8,
        seed=7,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


# ---------------------------------------------------------------------------
# Spec validation and serialisation
# ---------------------------------------------------------------------------


class TestFleetSpecs:
    def test_pool_names_must_be_unique(self):
        with pytest.raises(ValueError, match="duplicate pool names"):
            ExperimentSpec(pools=(PoolSpec(name="p"), PoolSpec(name="p")))

    def test_pool_validates_model_scheduler_router(self):
        with pytest.raises(ValueError, match="unknown model"):
            PoolSpec(name="p", model="13b")
        with pytest.raises(ValueError, match="scheduler policy"):
            PoolSpec(name="p", scheduler="edf")
        with pytest.raises(ValueError, match="router policy"):
            PoolSpec(name="p", router="random")

    def test_mixture_requires_open_loop_arrival(self):
        with pytest.raises(ValueError, match="open-loop"):
            ExperimentSpec(
                workloads=(WeightedWorkload(agent="chatbot", workload="sharegpt"),),
                arrival=ArrivalSpec(process="sequential", num_requests=4),
            )

    def test_mixture_weights_must_be_positive(self):
        with pytest.raises(ValueError, match="weight"):
            WeightedWorkload(agent="chatbot", workload="sharegpt", weight=0.0)

    def test_pool_traffic_classes_must_name_mixture_labels(self):
        with pytest.raises(ValueError, match="unknown traffic class"):
            mixed_fleet_spec(
                pools=(
                    PoolSpec(name="chat", traffic_classes=("chit-chat",)),
                    PoolSpec(name="agent", traffic_classes=("agent",)),
                )
            )

    def test_autoscaler_requires_serving_arrival_and_known_pool(self):
        with pytest.raises(ValueError, match="serving arrival"):
            ExperimentSpec(
                autoscaler=AutoscalerSpec(),
                arrival=ArrivalSpec(process="single", num_requests=2),
            )
        with pytest.raises(ValueError, match="unknown pool"):
            mixed_fleet_spec(autoscaler=AutoscalerSpec(pool="gpu-heavy"))

    def test_autoscaler_threshold_ordering(self):
        with pytest.raises(ValueError, match="scale-down threshold"):
            AutoscalerSpec(
                scale_up_pending_per_replica=1.0, scale_down_pending_per_replica=2.0
            )

    def test_weighted_workload_label_defaults_to_workload(self):
        mix = WeightedWorkload(agent="chatbot", workload="sharegpt")
        assert mix.name == "sharegpt"

    def test_fleet_spec_round_trips_through_dict(self):
        spec = mixed_fleet_spec(predictor_error=0.25)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec


# ---------------------------------------------------------------------------
# Acceptance: mixed traffic on a two-pool autoscaled fleet
# ---------------------------------------------------------------------------


class TestMixedFleetServing:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_experiment(mixed_fleet_spec())

    def test_all_requests_complete(self, outcome):
        assert outcome.num_completed == 16

    def test_per_pool_metrics_reported(self, outcome):
        pools = outcome.pool_stats
        assert set(pools) == {"chat", "agent"}
        for stats in pools.values():
            assert stats.completed_llm_requests > 0
            assert stats.llm_p95_latency_s > 0
            assert stats.llm_throughput_qps > 0
            assert stats.energy_wh > 0
            assert stats.replica_seconds > 0

    def test_per_class_metrics_reported(self, outcome):
        classes = outcome.class_stats
        assert set(classes) == {"chat", "agent"}
        total = sum(stats.num_completed for stats in classes.values())
        assert total == outcome.num_completed
        for stats in classes.values():
            assert stats.p95_latency_s >= stats.mean_latency_s * 0.5
            assert stats.throughput_qps > 0

    def test_traffic_lands_in_its_pool(self, outcome):
        pools = outcome.pool_stats
        # Agent traffic issues several LLM calls per request; the agent pool
        # must therefore see more engine requests than the chat pool.
        assert pools["agent"].completed_llm_requests > pools["chat"].completed_llm_requests

    def test_replica_seconds_accounted(self, outcome):
        serving = outcome.serving
        assert outcome.replica_seconds == pytest.approx(
            sum(stats.replica_seconds for stats in serving.pool_stats.values())
        )
        # At least the three initial replicas for the whole run...
        assert outcome.replica_seconds >= 3 * serving.duration * 0.99
        # ...and no more than the maximum fleet for the whole run.
        assert outcome.replica_seconds <= 6 * serving.duration * 1.01

    def test_autoscaler_scaled_the_chat_pool(self, outcome):
        events = outcome.serving.scaling_events
        assert any(event.action == "grow" for event in events)
        assert all(event.pool == "chat" for event in events)
        assert outcome.pool_stats["chat"].num_replicas > 1

    def test_summary_includes_replica_seconds(self, outcome):
        assert outcome.summary()["replica_seconds"] == outcome.replica_seconds

    def test_mixture_is_deterministic_at_fixed_seed(self, outcome):
        again = run_experiment(mixed_fleet_spec())
        assert again.latencies == outcome.latencies
        assert again.serving.routed_counts == outcome.serving.routed_counts
        assert [e.time for e in again.serving.scaling_events] == [
            e.time for e in outcome.serving.scaling_events
        ]


# ---------------------------------------------------------------------------
# Noisy decode-length predictor
# ---------------------------------------------------------------------------


class TestDecodeLengthPredictor:
    def test_exact_by_default(self):
        predictor = DecodeLengthPredictor()
        request = make_request(output_tokens=40)
        assert predictor.predict(request) == 40.0
        assert "predicted_decode" not in request.metadata

    def test_noisy_prediction_is_deterministic_and_cached(self):
        request = make_request(output_tokens=40, stream="noisy")
        first = DecodeLengthPredictor(0.3, seed=5).predict(request)
        second = DecodeLengthPredictor(0.3, seed=5).predict(request)
        assert first == second
        assert request.metadata["predicted_decode"] == first
        assert first != 40.0

    def test_error_scales_dispersion(self):
        exact = 100
        requests = [make_request(output_tokens=exact, stream=f"s{i}") for i in range(64)]
        small = DecodeLengthPredictor(0.05, seed=1)
        errors = [abs(small.predict(r) - exact) / exact for r in requests]
        assert 0 < sum(errors) / len(errors) < 0.15

    def test_sjf_policy_uses_configured_predictor(self):
        from repro.llm.prefix_cache import PrefixCache
        from repro.llm import KVCacheConfig
        from repro.llm.models import LLAMA_3_1_8B

        kv = KVCacheConfig(
            block_size=16,
            num_blocks=64,
            bytes_per_block=16 * LLAMA_3_1_8B.kv_bytes_per_token,
            enable_prefix_caching=True,
        )
        noisy = Scheduler(
            SchedulerConfig(
                policy="sjf-by-predicted-decode", predictor_error=0.4, predictor_seed=3
            ),
            PrefixCache(kv),
        )
        assert noisy.policy.predictor.relative_error == 0.4
        exact = Scheduler(
            SchedulerConfig(policy="sjf-by-predicted-decode"), PrefixCache(kv)
        )
        assert exact.policy.predictor.is_exact

    def test_noisy_sjf_experiment_runs_end_to_end(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            scheduler="sjf-by-predicted-decode",
            predictor_error=0.3,
            arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=5, task_pool_size=4),
            max_decode_chunk=8,
        )
        outcome = run_experiment(spec)
        assert outcome.num_completed == 5


# ---------------------------------------------------------------------------
# Engine window-aggregate caching
# ---------------------------------------------------------------------------


class TestEngineWindowAggregates:
    def _drive(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig())
        events = [
            engine.submit(make_request(96, output_tokens=24, stream=f"w{i}"))
            for i in range(4)
        ]
        env.run(env.all_of(events))
        return engine

    def _brute_force(self, engine, start, end):
        breakdown = {"prefill": 0.0, "decode": 0.0, "mixed": 0.0, "idle": 0.0}
        total_time = weighted = maximum = 0.0
        for record in engine.step_records:
            record_end = record.start + record.duration
            overlap = min(record_end, end) - max(record.start, start)
            if overlap <= 0:
                continue
            breakdown[record.kind] += overlap
            total_time += overlap
            weighted += record.kv_bytes_active * overlap
            maximum = max(maximum, record.kv_bytes_active)
        average = weighted / total_time if total_time > 0 else 0.0
        return breakdown, {"average_bytes": average, "max_bytes": maximum}

    def test_windowed_queries_match_brute_force(self):
        engine = self._drive()
        assert len(engine.step_records) > 4
        horizon = engine.env.now
        windows = [
            (0.0, float("inf")),
            (0.0, horizon),
            (horizon * 0.25, horizon * 0.75),
            (horizon * 0.5, float("inf")),
            (horizon * 2, float("inf")),  # empty window
        ]
        for start, end in windows:
            expected_breakdown, expected_kv = self._brute_force(engine, start, end)
            got_end = None if end == float("inf") else end
            assert engine.runtime_breakdown(start, got_end) == expected_breakdown
            assert engine.kv_memory_stats(start, got_end) == expected_kv


class TestFleetRegressions:
    def test_noisy_sjf_is_reproducible_within_one_process(self):
        # Predictions must derive from request content, not the process-global
        # request counter: two identical experiments in one process must agree.
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            scheduler="sjf-by-predicted-decode",
            predictor_error=0.5,
            arrival=ArrivalSpec(
                process="poisson", qps=20.0, num_requests=30, task_pool_size=8
            ),
            max_decode_chunk=8,
            seed=3,
        )
        first = run_experiment(spec)
        second = run_experiment(spec)
        assert first.latencies == second.latencies

    def test_drain_detects_deadlocked_worker_despite_autoscaler_heartbeat(self):
        # The autoscaler's periodic timer keeps the event queue non-empty
        # forever; a deadlocked worker must still end the drain loop.
        from repro.api.builder import SystemBuilder
        from repro.api.runners import ServingDriver, _build_plan

        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            autoscaler=AutoscalerSpec(check_interval_s=1.0, max_replicas=2),
            arrival=ArrivalSpec(
                process="poisson", qps=4.0, num_requests=3, task_pool_size=3
            ),
            max_decode_chunk=8,
        )
        system = SystemBuilder(spec).build()

        class StuckAgent:
            def run_process(self, task):
                return system.env.event()  # never fires

        system.create_agent = lambda **kwargs: StuckAgent()
        driver = ServingDriver(system)
        result = driver.serve(_build_plan(system))
        assert result.num_completed == 0

    def test_mixture_spec_skips_legacy_workload(self):
        from repro.api.builder import SystemBuilder

        system = SystemBuilder(mixed_fleet_spec()).build()
        assert system.workload is None
        assert set(system.traffic) == {"chat", "agent"}
