"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.llm import EngineConfig, LLMClient, LLMEngine
from repro.llm.models import LLAMA_3_1_8B
from repro.sim import Environment, RandomStream


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def stream() -> RandomStream:
    return RandomStream(1234, "tests")


@pytest.fixture
def engine(env: Environment) -> LLMEngine:
    return LLMEngine(env, EngineConfig(model=LLAMA_3_1_8B))


@pytest.fixture
def client(env: Environment, engine: LLMEngine) -> LLMClient:
    return LLMClient(env, engine)
