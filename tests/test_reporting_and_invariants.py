"""Tests for the reporting helpers plus cross-cutting conservation invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import AgentConfig
from repro.analysis.reporting import format_table, format_value
from repro.core import SingleRequestRunner
from repro.llm import EngineConfig, LLMClient, LLMEngine
from repro.llm.energy import EnergyMeter, PowerState, joules_to_wh, wh_to_joules
from repro.llm.hardware import cluster_for_model
from repro.llm.models import LLAMA_3_1_8B
from repro.llm.tokenizer import Prompt, SegmentKind
from repro.sim import Environment


class TestFormatting:
    def test_format_value_integers_and_strings(self):
        assert format_value("abc") == "abc"
        assert format_value(3) == "3"

    def test_format_value_float_ranges(self):
        assert format_value(0.0) == "0"
        assert format_value(1234.5) == "1,234"
        assert format_value(12.34) == "12.3"
        assert format_value(0.1234) == "0.123"
        assert format_value(1e-6) == "1.00e-06"

    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["x", "y", "z"]),
                st.one_of(st.integers(-1000, 1000), st.floats(0, 1e6), st.text(max_size=8)),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_format_table_never_crashes(self, rows):
        # Normalise: format_table reads columns from the first row.
        columns = list(rows[0].keys())
        normalised = [{column: row.get(column, "") for column in columns} for row in rows]
        assert format_table(normalised)


class TestEnergyMeter:
    def test_unit_conversions_roundtrip(self):
        assert joules_to_wh(wh_to_joules(1.5)) == pytest.approx(1.5)

    def test_record_negative_duration_rejected(self):
        meter = EnergyMeter(cluster=cluster_for_model(LLAMA_3_1_8B))
        with pytest.raises(ValueError):
            meter.record(PowerState.DECODE, -1.0)

    def test_average_power_between_idle_and_prefill(self):
        cluster = cluster_for_model(LLAMA_3_1_8B)
        meter = EnergyMeter(cluster=cluster)
        meter.record(PowerState.IDLE, 10.0)
        meter.record(PowerState.DECODE, 10.0)
        assert cluster.power_w("idle") < meter.average_power_w < cluster.power_w("prefill")

    def test_window_since_snapshot(self):
        meter = EnergyMeter(cluster=cluster_for_model(LLAMA_3_1_8B))
        meter.record(PowerState.DECODE, 5.0)
        snapshot = meter.snapshot()
        meter.record(PowerState.PREFILL, 2.0)
        window = meter.since(snapshot)
        assert window.seconds_by_state[PowerState.PREFILL] == pytest.approx(2.0)
        assert window.seconds_by_state[PowerState.DECODE] == pytest.approx(0.0)
        assert window.total_joules < meter.total_joules


class TestConservationInvariants:
    """End-to-end bookkeeping invariants of the serving engine."""

    def _run_requests(self, count=4, output_tokens=40):
        env = Environment()
        engine = LLMEngine(env, EngineConfig())
        client = LLMClient(env, engine)

        def proc(index):
            prompt = Prompt()
            prompt.append(engine.tokenizer.span(SegmentKind.USER, f"req{index}", 120))
            result = yield client.generate(prompt, output_tokens=output_tokens)
            return result

        processes = [env.process(proc(index)) for index in range(count)]
        env.run()
        return engine, [process.value for process in processes]

    def test_generated_tokens_match_requests(self):
        engine, results = self._run_requests(count=5, output_tokens=32)
        assert engine.total_generated_tokens == sum(r.output_tokens for r in results)
        step_tokens = sum(record.generated_tokens for record in engine.step_records)
        assert step_tokens == engine.total_generated_tokens

    def test_energy_equals_sum_of_step_energies(self):
        engine, _ = self._run_requests()
        step_joules = sum(record.energy_joules for record in engine.step_records)
        assert step_joules == pytest.approx(engine.energy.total_joules, rel=1e-6)

    def test_busy_time_equals_step_durations(self):
        engine, _ = self._run_requests()
        breakdown = engine.runtime_breakdown()
        busy_from_records = sum(
            record.duration for record in engine.step_records if record.kind != "idle"
        )
        assert breakdown["prefill"] + breakdown["decode"] == pytest.approx(busy_from_records)

    def test_all_requests_completed_and_freed(self):
        engine, results = self._run_requests(count=6)
        assert len(engine.completed_requests) == 6
        assert engine.kv_cache.active_blocks() == 0
        assert engine.scheduler.num_running == 0
        assert engine.scheduler.num_waiting == 0
        assert all(result.e2e_latency > 0 for result in results)


class TestRunnerObservationConsistency:
    def test_observation_energy_matches_power_window(self):
        runner = SingleRequestRunner(model="8b", seed=2)
        result = runner.run("react", "hotpotqa", config=AgentConfig(max_iterations=5), num_tasks=3)
        for observation in result.observations:
            # Energy over the request window can never exceed prefill power for
            # the whole window nor fall below idle power for the whole window.
            window_seconds = observation.result.e2e_latency
            cluster = cluster_for_model(LLAMA_3_1_8B)
            low = cluster.power_w("idle") * window_seconds / 3600.0
            high = cluster.power_w("prefill") * window_seconds / 3600.0
            assert low * 0.9 <= observation.energy_wh <= high * 1.1

    def test_gpu_window_matches_request_duration(self):
        runner = SingleRequestRunner(model="8b", seed=2)
        result = runner.run("react", "hotpotqa", config=AgentConfig(max_iterations=5), num_tasks=3)
        for observation in result.observations:
            assert observation.gpu.total == pytest.approx(observation.result.e2e_latency, rel=0.1)
