"""Tests for seeded random streams and samplers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    DeterministicArrivals,
    ExponentialSampler,
    LogNormalSampler,
    PoissonArrivals,
    RandomStream,
    UniformSampler,
)


class TestRandomStream:
    def test_same_seed_and_name_is_deterministic(self):
        a = RandomStream(42, "x")
        b = RandomStream(42, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_give_different_sequences(self):
        a = RandomStream(42, "x")
        b = RandomStream(42, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_give_different_sequences(self):
        a = RandomStream(1, "x")
        b = RandomStream(2, "x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_substream_is_deterministic(self):
        a = RandomStream(7, "root").substream("child")
        b = RandomStream(7, "root").substream("child")
        assert a.random() == b.random()

    def test_substream_independent_from_parent(self):
        parent = RandomStream(7, "root")
        child = parent.substream("child")
        before = parent.random()
        # Drawing from the child must not perturb the parent sequence.
        parent2 = RandomStream(7, "root")
        parent2.substream("child")
        assert parent2.random() == before

    def test_integers_respect_bounds(self):
        stream = RandomStream(3, "ints")
        values = [stream.integers(2, 6) for _ in range(200)]
        assert all(2 <= value < 6 for value in values)
        assert set(values) == {2, 3, 4, 5}

    def test_uniform_respects_bounds(self):
        stream = RandomStream(3, "uniform")
        values = [stream.uniform(-1.0, 1.0) for _ in range(100)]
        assert all(-1.0 <= value <= 1.0 for value in values)

    def test_choice_returns_elements(self):
        stream = RandomStream(3, "choice")
        options = ["a", "b", "c"]
        assert all(stream.choice(options) in options for _ in range(20))

    def test_shuffle_is_permutation(self):
        stream = RandomStream(3, "shuffle")
        items = list(range(10))
        shuffled = stream.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # original untouched


class TestSamplers:
    def test_uniform_sampler_bounds_and_mean(self, stream):
        sampler = UniformSampler(2.0, 4.0)
        values = [sampler.sample(stream) for _ in range(500)]
        assert all(2.0 <= value <= 4.0 for value in values)
        assert sampler.mean == pytest.approx(3.0)

    def test_exponential_sampler_mean(self, stream):
        sampler = ExponentialSampler(2.0)
        values = [sampler.sample(stream) for _ in range(4000)]
        assert sum(values) / len(values) == pytest.approx(2.0, rel=0.15)
        assert all(value >= 0 for value in values)

    def test_lognormal_sampler_mean_and_positivity(self, stream):
        sampler = LogNormalSampler(1.2, cv=0.4)
        values = [sampler.sample(stream) for _ in range(4000)]
        assert all(value > 0 for value in values)
        assert sum(values) / len(values) == pytest.approx(1.2, rel=0.1)

    def test_lognormal_zero_mean_returns_zero(self, stream):
        assert LogNormalSampler(0.0, cv=0.4).sample(stream) == 0.0

    @given(mean=st.floats(0.01, 100.0), cv=st.floats(0.05, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_lognormal_sample_is_positive_for_any_parameters(self, mean, cv):
        stream = RandomStream(9, f"hyp/{mean}/{cv}")
        sampler = LogNormalSampler(mean, cv)
        assert sampler.sample(stream) > 0


class TestArrivals:
    def test_poisson_arrival_times_are_increasing(self, stream):
        arrivals = PoissonArrivals(2.0, stream)
        times = arrivals.arrival_times(100)
        assert len(times) == 100
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_poisson_rate_matches_mean_gap(self, stream):
        arrivals = PoissonArrivals(4.0, stream)
        times = arrivals.arrival_times(4000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(0.25, rel=0.1)

    def test_poisson_requires_positive_rate(self, stream):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, stream)

    def test_deterministic_arrivals_evenly_spaced(self):
        times = DeterministicArrivals(2.0).arrival_times(4)
        assert times == [pytest.approx(0.5), pytest.approx(1.0), pytest.approx(1.5), pytest.approx(2.0)]

    def test_deterministic_requires_positive_rate(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(-1.0)

    def test_arrival_times_respect_start_offset(self, stream):
        times = PoissonArrivals(1.0, stream).arrival_times(10, start=100.0)
        assert all(time > 100.0 for time in times)
