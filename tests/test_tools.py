"""Tests for the simulated tool environments."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import EngineConfig, LLMClient, LLMEngine
from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer
from repro.sim import Environment, RandomStream
from repro.sim.distributions import LogNormalSampler
from repro.tools import (
    CalculatorTool,
    ProductCatalog,
    PythonExecutionTool,
    ToolAction,
    ToolSet,
    WebShopTool,
    WikipediaCorpus,
    WikipediaTool,
    WolframAlphaTool,
    evaluate_expression,
)
from repro.tools.calculator import ExpressionError

TOKENIZER = SyntheticTokenizer()


def run_tool(env, tool, action):
    return env.run(env.process(tool.invoke(action)))


class TestExpressionEvaluator:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("1 + 1", 2.0),
            ("2 * 3 + 4", 10.0),
            ("2 + 3 * 4", 14.0),
            ("(2 + 3) * 4", 20.0),
            ("10 / 4", 2.5),
            ("7 % 3", 1.0),
            ("2 ^ 10", 1024.0),
            ("-5 + 3", -2.0),
            ("--4", 4.0),
            ("sqrt(16)", 4.0),
            ("abs(-3.5)", 3.5),
            ("floor(2.9)", 2.0),
            ("ceil(2.1)", 3.0),
            ("2 * pi", 6.283185307179586),
            ("log(e)", 1.0),
            ("2 ^ 3 ^ 2", 512.0),  # right-associative exponentiation
            ("3 + 4 * 2 / (1 - 5) ^ 2", 3.5),
        ],
    )
    def test_expression_values(self, expression, expected):
        assert evaluate_expression(expression) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "expression",
        ["", "   ", "1 +", "(1 + 2", "1 / 0", "5 % 0", "unknownfn(3)", "2 ** 3", "1 2"],
    )
    def test_invalid_expressions_raise(self, expression):
        with pytest.raises(ExpressionError):
            evaluate_expression(expression)

    @given(a=st.integers(-50, 50), b=st.integers(-50, 50), c=st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_matches_python_arithmetic(self, a, b, c):
        assert evaluate_expression(f"{a} + {b} * {c}") == pytest.approx(a + b * c)


class TestWikipedia:
    @pytest.fixture
    def corpus(self):
        return WikipediaCorpus(RandomStream(3, "wiki"), num_entities=60)

    @pytest.fixture
    def tool(self, env, corpus):
        return WikipediaTool(
            env=env,
            tokenizer=TOKENIZER,
            latency_sampler=LogNormalSampler(1.2, 0.4),
            stream=RandomStream(3, "wiki-tool"),
            corpus=corpus,
        )

    def test_corpus_size_and_kinds(self, corpus):
        assert len(corpus) >= 50
        kinds = {article.kind for article in corpus.articles.values()}
        assert kinds == {"person", "place", "work"}

    def test_corpus_is_deterministic_for_seed(self):
        a = WikipediaCorpus(RandomStream(3, "wiki"), num_entities=40)
        b = WikipediaCorpus(RandomStream(3, "wiki"), num_entities=40)
        assert a.titles() == b.titles()

    def test_corpus_too_small_rejected(self):
        with pytest.raises(ValueError):
            WikipediaCorpus(RandomStream(1, "wiki"), num_entities=5)

    def test_relation_chains_are_resolvable(self, corpus):
        works = [a for a in corpus.articles.values() if a.kind == "work"]
        for work in works[:10]:
            creator = corpus.get(work.attributes["creator"])
            assert creator is not None
            assert corpus.get(creator.attributes["birthplace"]) is not None

    def test_search_exact_title(self, env, tool, corpus):
        title = corpus.titles()[0]
        result = run_tool(env, tool, ToolAction("wikipedia", "search", title))
        assert result.success
        assert result.observation_tokens > 0
        assert result.latency > 0

    def test_search_miss_returns_similar(self, env, tool):
        result = run_tool(env, tool, ToolAction("wikipedia", "search", "zzz-not-a-title"))
        assert not result.success
        assert "Similar" in result.observation_text

    def test_lookup_after_search(self, env, tool, corpus):
        person = next(a for a in corpus.articles.values() if a.kind == "person")
        run_tool(env, tool, ToolAction("wikipedia", "search", person.title))
        result = run_tool(env, tool, ToolAction("wikipedia", "lookup", "born"))
        assert result.success

    def test_lookup_without_match_fails(self, env, tool, corpus):
        run_tool(env, tool, ToolAction("wikipedia", "search", corpus.titles()[0]))
        result = run_tool(env, tool, ToolAction("wikipedia", "lookup", "xylophone-unrelated"))
        assert not result.success

    def test_invalid_action_fails(self, env, tool):
        result = run_tool(env, tool, ToolAction("wikipedia", "delete", "x"))
        assert not result.success

    def test_latency_roughly_matches_calibration(self, env, tool, corpus):
        latencies = []
        for title in corpus.titles()[:30]:
            result = run_tool(env, tool, ToolAction("wikipedia", "search", title))
            latencies.append(result.latency)
        assert 0.7 < sum(latencies) / len(latencies) < 1.9


class TestWebShop:
    @pytest.fixture
    def catalog(self):
        return ProductCatalog(RandomStream(5, "catalog"), num_products=150)

    @pytest.fixture
    def tool(self, env, catalog):
        return WebShopTool(
            env=env,
            tokenizer=TOKENIZER,
            latency_sampler=LogNormalSampler(0.02, 0.3),
            stream=RandomStream(5, "webshop-tool"),
            catalog=catalog,
        )

    def test_catalog_minimum_size(self):
        with pytest.raises(ValueError):
            ProductCatalog(RandomStream(1, "c"), num_products=5)

    def test_search_finds_matching_products(self, catalog):
        product = catalog.products[0]
        results = catalog.search(product.category)
        assert results
        assert all(product.category in r.title for r in results)

    def test_find_matching_respects_price(self, catalog):
        product = catalog.products[0]
        matches = catalog.find_matching({"category": product.category}, max_price=product.price)
        assert all(m.price <= product.price for m in matches)

    def test_search_then_click_then_buy(self, env, tool, catalog):
        target = catalog.products[0]
        search = run_tool(env, tool, ToolAction("webshop", "search", target.category))
        assert search.success
        click = run_tool(env, tool, ToolAction("webshop", "click", target.product_id))
        assert click.success
        buy = run_tool(env, tool, ToolAction("webshop", "click", "buy now"))
        assert buy.success
        assert tool.purchased is target

    def test_buy_without_selection_fails(self, env, tool):
        result = run_tool(env, tool, ToolAction("webshop", "click", "buy now"))
        assert not result.success

    def test_option_click_on_product_page(self, env, tool, catalog):
        target = catalog.products[3]
        run_tool(env, tool, ToolAction("webshop", "click", target.product_id))
        result = run_tool(env, tool, ToolAction("webshop", "click", "large"))
        assert result.success
        assert "large" in tool.selected_options

    def test_search_no_results(self, env, tool):
        result = run_tool(env, tool, ToolAction("webshop", "search", "nonexistent-gizmo-xyz"))
        assert not result.success

    def test_observation_pages_are_token_heavy(self, env, tool, catalog):
        result = run_tool(env, tool, ToolAction("webshop", "search", catalog.products[0].category))
        assert result.observation_tokens > 50

    def test_latency_is_local_scale(self, env, tool, catalog):
        result = run_tool(env, tool, ToolAction("webshop", "search", catalog.products[0].category))
        assert result.latency < 0.2

    def test_reset_session_clears_state(self, env, tool, catalog):
        run_tool(env, tool, ToolAction("webshop", "click", catalog.products[0].product_id))
        tool.reset_session()
        assert tool.current_product is None
        assert tool.purchased is None


class TestCalculatorTools:
    @pytest.fixture
    def calculator(self, env):
        return CalculatorTool(env, TOKENIZER, LogNormalSampler(0.05, 0.3), RandomStream(7, "calc"))

    @pytest.fixture
    def wolfram(self, env):
        return WolframAlphaTool(env, TOKENIZER, LogNormalSampler(1.4, 0.4), RandomStream(7, "wolf"))

    def test_calculator_evaluates(self, env, calculator):
        result = run_tool(env, calculator, ToolAction("calculator", "solve", "12 * 12 + 1"))
        assert result.success
        assert result.data == pytest.approx(145.0)

    def test_calculator_rejects_bad_expression(self, env, calculator):
        result = run_tool(env, calculator, ToolAction("calculator", "solve", "what is love"))
        assert not result.success

    def test_wolfram_numeric_query(self, env, wolfram):
        result = run_tool(env, wolfram, ToolAction("wolfram", "solve", "sqrt(144) + 8"))
        assert result.success
        assert result.data == pytest.approx(20.0)

    def test_wolfram_symbolic_query_succeeds(self, env, wolfram):
        result = run_tool(env, wolfram, ToolAction("wolfram", "solve", "integrate x^2 dx"))
        assert result.success
        assert result.data is None

    def test_wolfram_slower_than_calculator(self, env, calculator, wolfram):
        calc = run_tool(env, calculator, ToolAction("calculator", "solve", "1+1"))
        wolf = run_tool(env, wolfram, ToolAction("wolfram", "solve", "1+1"))
        assert wolf.latency > calc.latency


class TestPythonExecutionTool:
    def test_uses_gpu_via_internal_llm_call(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig())
        client = LLMClient(env, engine)
        tool = PythonExecutionTool(
            env=env,
            tokenizer=engine.tokenizer,
            latency_sampler=LogNormalSampler(2.6, 0.4),
            stream=RandomStream(9, "pyexec"),
            llm_client=client,
        )
        result = run_tool(env, tool, ToolAction("python_exec", "run_tests", "rolling_median"))
        assert result.used_gpu
        assert result.latency > 0.5
        # The tool's internal test-generation call went through the engine.
        assert len(engine.completed_requests) == 1
        assert engine.completed_requests[0].metadata.get("role") == "tool_internal"

    def test_works_without_llm_client(self, env):
        tool = PythonExecutionTool(
            env=env,
            tokenizer=TOKENIZER,
            latency_sampler=LogNormalSampler(2.6, 0.4),
            stream=RandomStream(9, "pyexec"),
            llm_client=None,
        )
        result = run_tool(env, tool, ToolAction("python_exec", "run_tests", "foo"))
        assert result.observation_tokens > 0


class TestToolSet:
    def test_requires_at_least_one_tool(self):
        with pytest.raises(ValueError):
            ToolSet([])

    def test_lookup_and_membership(self, env):
        calculator = CalculatorTool(env, TOKENIZER, LogNormalSampler(0.05, 0.3), RandomStream(1, "c"))
        wolfram = WolframAlphaTool(env, TOKENIZER, LogNormalSampler(1.4, 0.4), RandomStream(1, "w"))
        tools = ToolSet([wolfram, calculator])
        assert "calculator" in tools
        assert tools.get("wolfram") is wolfram
        assert tools.primary is wolfram
        assert len(tools) == 2

    def test_unknown_tool_raises(self, env):
        calculator = CalculatorTool(env, TOKENIZER, LogNormalSampler(0.05, 0.3), RandomStream(1, "c"))
        with pytest.raises(KeyError):
            ToolSet([calculator]).get("browser")

    def test_call_dispatches_to_owner(self, env):
        calculator = CalculatorTool(env, TOKENIZER, LogNormalSampler(0.05, 0.3), RandomStream(1, "c"))
        tools = ToolSet([calculator])

        def proc():
            result = yield from tools.call(ToolAction("calculator", "solve", "6*7"))
            return result

        result = env.run(env.process(proc()))
        assert result.data == pytest.approx(42.0)
