"""Integration tests for the figure/table regeneration layer.

These use very small sample sizes so the whole file runs in well under a
minute while still exercising every analysis entry point end to end.
"""

from __future__ import annotations

import pytest

from repro.agents import PAPER_AGENTS
from repro.analysis import (
    characterization_matrix,
    default_config,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure12,
    figure13,
    figure14,
    figure15,
    format_table,
    table1,
    table2,
    table3,
    table4,
)
from repro.core import CHATGPT_QUERIES_PER_DAY


@pytest.fixture(scope="module")
def matrix():
    """Shared tiny characterization matrix (2 benchmarks, 3 tasks each)."""
    return characterization_matrix(
        benchmarks=("hotpotqa", "webshop"),
        agents=PAPER_AGENTS,
        num_tasks=3,
        seed=0,
    )


class TestStaticTables:
    def test_table1_rows_match_paper(self):
        rows = {row["Agent"]: row for row in table1().rows()}
        assert len(rows) == 5
        assert rows["cot"]["Tool Use"] == "X"
        assert rows["react"]["Tool Use"] == "O"
        assert rows["lats"]["Tree Search"] == "O"
        assert rows["llmcompiler"]["Structured Planning"] == "O"
        assert all(row["Reasoning"] == "O" for row in rows.values())

    def test_table2_rows_cover_all_benchmarks(self):
        rows = {row["Benchmark"]: row for row in table2().rows()}
        assert set(rows) == {"hotpotqa", "webshop", "math", "humaneval"}
        assert "Wikipedia" in rows["hotpotqa"]["Tool"]
        assert "cot" not in rows["webshop"]["Agent"]

    def test_format_table_renders(self):
        text = table1().format()
        assert "Table I" in text
        assert "llmcompiler" in text


class TestCharacterizationFigures:
    def test_default_config_varies_by_benchmark(self):
        assert default_config("webshop").max_iterations > default_config("hotpotqa").max_iterations
        assert default_config("hotpotqa", num_few_shot=5).num_few_shot == 5

    def test_matrix_respects_support_matrix(self, matrix):
        assert matrix.get("cot", "webshop") is None
        assert matrix.get("react", "hotpotqa") is not None

    def test_figure4_agents_make_more_calls_than_cot(self, matrix):
        fig = figure4(matrix=matrix)
        ratios = fig.llm_call_ratio_vs_cot("hotpotqa")
        assert ratios, "expected tool-augmented agents in the matrix"
        assert all(ratio > 1.0 for ratio in ratios.values())
        assert max(ratios, key=ratios.get) == "lats"

    def test_figure4_rows_have_expected_columns(self, matrix):
        rows = figure4(matrix=matrix).rows()
        assert {"benchmark", "agent", "llm_invocations", "tool_invocations"} <= set(rows[0])

    def test_figure5_fractions_sum_to_one(self, matrix):
        for row in figure5(matrix=matrix).rows():
            total = row["llm_frac"] + row["tool_frac"] + row["overlap_frac"] + row["other_frac"]
            assert total == pytest.approx(1.0, abs=0.02)

    def test_figure5_both_llm_and_tools_contribute(self, matrix):
        fractions = figure5(matrix=matrix).average_fractions()
        assert fractions["llm"] > 0.3
        assert fractions["tool"] > 0.02

    def test_figure6_utilization_within_unit_range(self, matrix):
        for row in figure6(matrix=matrix).rows():
            assert 0.0 <= row["gpu_utilization"] <= 1.0
            assert row["prefill_frac"] < row["decode_frac"]

    def test_figure6_hotpotqa_idle_exceeds_webshop_idle(self, matrix):
        rows = {(r["benchmark"], r["agent"]): r for r in figure6(matrix=matrix).rows()}
        assert rows[("hotpotqa", "react")]["idle_frac"] > rows[("webshop", "react")]["idle_frac"]

    def test_figure8_token_composition(self, matrix):
        rows = {(r["benchmark"], r["agent"]): r for r in figure8(matrix=matrix).rows()}
        react = rows[("hotpotqa", "react")]
        cot = rows[("hotpotqa", "cot")]
        assert react["input_total"] > cot["input_total"]
        assert react["tool_history"] > 0
        assert cot["tool_history"] == 0

    def test_figure7_agent_distributions_wider_than_chatbot(self):
        fig = figure7(num_tasks=6)
        rows = {row["workload"]: row for row in fig.rows()}
        assert rows["hotpotqa_react"]["p95_s"] > rows["sharegpt_chatbot"]["p95_s"]
        histogram = fig.histogram("sharegpt_chatbot")
        assert sum(histogram.values()) == 6


class TestSweepFigures:
    def test_figure14_accuracy_non_decreasing_with_budget(self):
        fig = figure14(budgets={"hotpotqa": (2, 6, 12)}, num_tasks=6)
        points = fig.sweeps["hotpotqa"].points
        assert points[-1].accuracy >= points[0].accuracy - 0.01
        assert points[-1].p95_latency_s >= points[0].p95_latency_s

    def test_figure14_markers_are_selected(self):
        fig = figure14(budgets={"hotpotqa": (2, 6, 12)}, num_tasks=4)
        sweep = fig.sweeps["hotpotqa"]
        assert sweep.best_accuracy() is not None
        assert sweep.best_efficiency() is not None

    def test_figure15_zero_shot_is_worst(self):
        fig = figure15(counts=(0, 2, 4), benchmarks=("hotpotqa",), num_tasks=6)
        points = fig.sweeps["hotpotqa"].points
        accuracy = {p.config["num_few_shot"]: p.accuracy for p in points}
        assert accuracy[2] >= accuracy[0]

    def test_figure13_contains_all_supported_agents(self):
        fig = figure13(benchmarks=("hotpotqa",), num_tasks=3)
        agents = {point.agent for point in fig.points["hotpotqa"]}
        assert agents == {"react", "reflexion", "lats", "llmcompiler"}
        rows = fig.rows()
        assert all(0 <= row["efficiency_norm"] <= 1 for row in rows)


class TestServingFigures:
    def test_figure12_prefix_caching_reduces_memory(self):
        fig = figure12(num_requests=10)
        assert fig.reduction("hotpotqa", "avg_bytes") > 0
        assert fig.reduction("webshop", "max_bytes") >= 0
        rows = fig.rows()
        assert len(rows) == 4


class TestEnergyTables:
    @pytest.fixture(scope="class")
    def table3_result(self):
        return table3(models=("8b",), num_tasks=3)

    def test_table3_contains_baseline_and_agents(self, table3_result):
        workloads = [row.workload for row in table3_result.rows_data]
        assert workloads == ["sharegpt", "reflexion", "lats"]

    def test_table3_agents_cost_more_than_sharegpt(self, table3_result):
        baseline = table3_result.rows_data[0]
        for row in table3_result.rows_data[1:]:
            assert row.latency_s > baseline.latency_s
            assert row.energy_wh > baseline.energy_wh
            assert row.energy_vs_sharegpt > 3.0

    def test_table4_power_scales_linearly_with_traffic(self, table3_result):
        result = table4(table3_result=table3_result)
        reflexion_small = result.power_for("reflexion-8b", CHATGPT_QUERIES_PER_DAY)
        reflexion_large = result.power_for("reflexion-8b", 13.7e9)
        assert reflexion_large.power_watts / reflexion_small.power_watts == pytest.approx(
            13.7e9 / CHATGPT_QUERIES_PER_DAY, rel=1e-6
        )

    def test_table4_rows_and_formatting(self, table3_result):
        result = table4(table3_result=table3_result)
        assert len(result.rows()) == 6  # 3 workloads x 2 traffic levels
        assert "Table IV" in result.format()
