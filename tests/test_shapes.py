"""Rate shapes: registry, validation, serialization, and shaped plans.

Covers the traffic-program vocabulary end to end: shape construction and
validation, serialization round-trips (including nested piecewise
programs through JSON), piecewise edge cases (zero-rate segments,
segment-boundary arrivals), the deterministic trace integrator, and the
thinning-based shaped plans -- including the golden identity: a constant
level-1 shape produces bit-for-bit the legacy unshaped plans.
"""

from __future__ import annotations

import json

import pytest

from repro.serving.loadgen import mixture_plan, poisson_plan, shaped_plan, uniform_plan
from repro.serving.shapes import (
    ConstantShape,
    DiurnalShape,
    PiecewiseShape,
    RampShape,
    RateShape,
    SquareWaveShape,
    TraceShape,
    available_shapes,
    build_shape,
    deterministic_trace,
    register_shape,
    shape_from_dict,
)
from repro.sim.distributions import RandomStream
from repro.workloads import create_workload


@pytest.fixture(scope="module")
def workload():
    return create_workload("sharegpt", seed=0)


# ---------------------------------------------------------------------------
# Registry and validation
# ---------------------------------------------------------------------------


class TestShapeRegistry:
    def test_builtins_registered(self):
        assert available_shapes() == [
            "constant",
            "diurnal",
            "piecewise",
            "ramp",
            "square-wave",
            "trace",
        ]

    def test_build_by_name(self):
        assert isinstance(build_shape("constant"), ConstantShape)
        assert isinstance(build_shape("RAMP", start_level=0.5), RampShape)
        with pytest.raises(ValueError, match="unknown rate shape"):
            build_shape("sawtooth")

    def test_custom_shape_registration(self):
        @register_shape
        class SpikeShape(RateShape):
            name = "spike-test"

            def level(self, t):
                return 2.0 if t < 1.0 else 0.5

            @property
            def max_level(self):
                return 2.0

        try:
            assert isinstance(build_shape("spike-test"), SpikeShape)
        finally:
            from repro.serving.shapes import RATE_SHAPES

            RATE_SHAPES.pop("spike-test", None)

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ConstantShape(level_value=-0.5)
        with pytest.raises(ValueError):
            RampShape(start_level=0.0, end_level=0.0)
        with pytest.raises(ValueError):
            RampShape(ramp_s=0.0)
        with pytest.raises(ValueError):
            SquareWaveShape(period_s=10.0, burst_start_s=8.0, burst_s=5.0)
        with pytest.raises(ValueError):
            DiurnalShape(mean_level=1.0, amplitude=1.5)
        with pytest.raises(ValueError):
            TraceShape(times=(0.0, 5.0, 3.0), levels=(1.0, 2.0, 1.0))
        with pytest.raises(ValueError):
            TraceShape(times=(1.0,), levels=(1.0,))
        with pytest.raises(ValueError):
            PiecewiseShape(segments=())
        with pytest.raises(ValueError):
            PiecewiseShape(segments=((0.0, ConstantShape()),))
        with pytest.raises(ValueError, match="positive level"):
            PiecewiseShape(segments=((5.0, ConstantShape(level_value=0.0)),))

    def test_piecewise_cannot_nest(self):
        inner = PiecewiseShape(segments=((5.0, ConstantShape()),))
        with pytest.raises(ValueError, match="cannot nest"):
            PiecewiseShape(segments=((5.0, inner),))


class TestShapeLevels:
    def test_ramp_holds_end_level(self):
        ramp = RampShape(start_level=1.0, end_level=3.0, ramp_s=10.0)
        assert ramp.level(0.0) == 1.0
        assert ramp.level(5.0) == 2.0
        assert ramp.level(25.0) == 3.0
        assert ramp.max_level == 3.0

    def test_square_wave_repeats(self):
        wave = SquareWaveShape(
            base_level=1.0, burst_level=5.0, period_s=20.0, burst_start_s=5.0,
            burst_s=5.0,
        )
        for cycle in (0.0, 20.0, 40.0):
            assert wave.level(cycle + 2.0) == 1.0
            assert wave.level(cycle + 5.0) == 5.0
            assert wave.level(cycle + 9.9) == 5.0
            assert wave.level(cycle + 10.0) == 1.0
        assert wave.next_change(2.0) == 5.0
        assert wave.next_change(7.0) == 10.0
        assert wave.next_change(12.0) == 25.0

    def test_diurnal_peaks_at_quarter_period(self):
        shape = DiurnalShape(mean_level=2.0, amplitude=1.0, period_s=40.0)
        assert shape.level(10.0) == pytest.approx(3.0)
        assert shape.level(30.0) == pytest.approx(1.0)
        assert shape.max_level == 3.0

    def test_trace_replay_steps_and_holds(self):
        trace = TraceShape(times=(0.0, 10.0, 20.0), levels=(1.0, 0.0, 2.0))
        assert trace.level(5.0) == 1.0
        assert trace.level(10.0) == 0.0
        assert trace.level(19.9) == 0.0
        assert trace.level(50.0) == 2.0
        assert trace.next_change(0.0) == 10.0
        assert trace.next_change(15.0) == 20.0
        assert trace.next_change(25.0) is None

    def test_next_positive_distinguishes_dead_tails_from_troughs(self):
        dead = TraceShape(times=(0.0, 30.0), levels=(1.0, 0.0))
        assert dead.next_positive(5.0) == 5.0
        assert dead.next_positive(35.0) is None
        trough = DiurnalShape(mean_level=1.0, amplitude=1.0, period_s=40.0)
        assert trough.next_positive(30.0) == 30.0  # isolated zero, recovers
        decayed = RampShape(start_level=1.0, end_level=0.0, ramp_s=10.0)
        assert decayed.next_positive(20.0) is None
        rising = RampShape(start_level=0.0, end_level=1.0, ramp_s=10.0)
        assert rising.next_positive(0.0) == 0.0
        silent_then_active = PiecewiseShape(
            segments=(
                (10.0, ConstantShape(level_value=0.0)),
                (10.0, ConstantShape(level_value=1.0)),
            )
        )
        assert silent_then_active.next_positive(2.0) == 10.0

    def test_piecewise_segments_run_on_local_clocks(self):
        program = PiecewiseShape(
            segments=(
                (10.0, RampShape(start_level=1.0, end_level=2.0, ramp_s=10.0)),
                (10.0, ConstantShape(level_value=0.0)),
                (10.0, ConstantShape(level_value=3.0)),
            )
        )
        assert program.level(5.0) == 1.5  # ramp at local t=5
        assert program.level(15.0) == 0.0  # silent segment
        assert program.level(25.0) == 3.0
        assert program.level(95.0) == 3.0  # final segment holds
        assert program.max_level == 3.0
        assert program.total_duration_s == 30.0
        # Segment boundaries are discontinuities.
        assert program.next_change(12.0) == 20.0


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


class TestShapeSerialization:
    SHAPES = (
        ConstantShape(level_value=0.5),
        RampShape(start_level=0.2, end_level=4.0, ramp_s=30.0),
        SquareWaveShape(base_level=0.5, burst_level=3.0, period_s=30.0,
                        burst_start_s=10.0, burst_s=10.0),
        DiurnalShape(mean_level=2.0, amplitude=1.5, period_s=120.0, phase_s=30.0),
        TraceShape(times=(0.0, 5.0, 12.0), levels=(1.0, 3.0, 0.5)),
        PiecewiseShape(
            segments=(
                (20.0, ConstantShape(level_value=1.0)),
                (20.0, SquareWaveShape()),
                (20.0, RampShape()),
            )
        ),
    )

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda shape: shape.kind)
    def test_round_trip_survives_json(self, shape):
        payload = json.loads(json.dumps(shape.to_dict()))
        assert payload["kind"] == shape.kind
        assert shape_from_dict(payload) == shape

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown rate shape"):
            shape_from_dict({"kind": "sawtooth"})
        with pytest.raises(ValueError, match="unknown rate shape"):
            shape_from_dict({"level_value": 1.0})

    def test_from_dict_passes_shapes_through(self):
        shape = RampShape()
        assert shape_from_dict(shape) is shape


# ---------------------------------------------------------------------------
# Deterministic traces
# ---------------------------------------------------------------------------


class TestDeterministicTrace:
    def test_constant_shape_matches_closed_form(self):
        trace = deterministic_trace(ConstantShape(), duration_s=10.0, qps=2.0)
        assert len(trace) == 20
        assert trace[0] == pytest.approx(0.5)
        assert trace[-1] == pytest.approx(10.0)

    def test_zero_rate_segments_are_skipped(self):
        program = PiecewiseShape(
            segments=(
                (10.0, ConstantShape(level_value=1.0)),
                (10.0, ConstantShape(level_value=0.0)),
                (10.0, ConstantShape(level_value=1.0)),
            )
        )
        trace = deterministic_trace(program, duration_s=30.0, qps=1.0)
        assert not [t for t in trace if 10.0 < t <= 20.0]
        assert len([t for t in trace if t <= 10.0]) == 10
        assert len([t for t in trace if t > 20.0]) >= 9

    def test_trailing_zero_rate_ends_the_trace(self):
        program = PiecewiseShape(
            segments=(
                (5.0, ConstantShape(level_value=1.0)),
                (5.0, ConstantShape(level_value=0.0)),
            )
        )
        trace = deterministic_trace(program, duration_s=100.0, qps=1.0)
        assert len(trace) == 5
        assert trace[-1] == pytest.approx(5.0)

    def test_max_arrivals_caps_the_trace(self):
        trace = deterministic_trace(
            ConstantShape(), duration_s=100.0, qps=1.0, max_arrivals=7
        )
        assert len(trace) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            deterministic_trace(ConstantShape(), duration_s=0.0)
        with pytest.raises(ValueError):
            deterministic_trace(ConstantShape(), duration_s=10.0, qps=0.0)


# ---------------------------------------------------------------------------
# Shaped plans
# ---------------------------------------------------------------------------


class TestShapedPlan:
    def test_identity_shape_is_bit_for_bit_legacy(self, workload):
        legacy = poisson_plan(
            workload, qps=2.0, num_requests=30, stream=RandomStream(3, "p"),
            task_pool_size=8,
        )
        shaped = shaped_plan(
            workload, qps=2.0, shape=ConstantShape(), num_requests=30,
            stream=RandomStream(3, "p"), task_pool_size=8,
        )
        assert shaped.arrival_times == legacy.arrival_times
        assert shaped.tasks == legacy.tasks

    def test_identity_uniform_is_bit_for_bit_legacy(self, workload):
        legacy = uniform_plan(workload, qps=2.0, num_requests=10, task_pool_size=8)
        shaped = shaped_plan(
            workload, qps=2.0, shape=ConstantShape(), num_requests=10,
            stream=RandomStream(3, "p"), task_pool_size=8, process="uniform",
        )
        assert shaped.arrival_times == legacy.arrival_times
        assert shaped.tasks == legacy.tasks

    def test_burst_concentrates_arrivals(self, workload):
        wave = SquareWaveShape(
            base_level=0.25, burst_level=4.0, period_s=40.0, burst_start_s=10.0,
            burst_s=10.0,
        )
        plan = shaped_plan(
            workload, qps=2.0, shape=wave, num_requests=80,
            stream=RandomStream(0, "burst"), task_pool_size=8,
        )
        in_burst = [t for t in plan.arrival_times if (t % 40.0) // 10.0 == 1.0]
        # The burst window is 1/4 of the period but carries 4/4.75 of the mass.
        assert len(in_burst) > len(plan) * 0.6

    def test_duration_semantics_cap_the_span(self, workload):
        plan = shaped_plan(
            workload, qps=2.0, shape=ConstantShape(), num_requests=1000,
            stream=RandomStream(0, "dur"), task_pool_size=8, process="uniform",
            duration_s=15.0,
        )
        assert plan.arrival_times[-1] <= 15.0
        assert len(plan) == 30

    def test_boundary_arrival_lands_inside_duration(self, workload):
        # qps=1 uniform arrivals land exactly on integer seconds; the arrival
        # at t == duration_s is inside the closed span.
        plan = shaped_plan(
            workload, qps=1.0, shape=ConstantShape(), num_requests=100,
            stream=RandomStream(0, "edge"), task_pool_size=8, process="uniform",
            duration_s=5.0,
        )
        assert plan.arrival_times == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0])

    def test_poisson_zero_rate_tail_ends_the_stream(self, workload):
        # A trace whose rate dies for good must end the plan, not stall the
        # thinning loop: count semantics simply come up short.
        dead_tail = TraceShape(times=(0.0, 30.0), levels=(1.0, 0.0))
        plan = shaped_plan(
            workload, qps=2.0, shape=dead_tail, num_requests=500,
            stream=RandomStream(0, "tail"), task_pool_size=8,
        )
        assert 0 < len(plan) < 500
        assert all(t <= 30.0 + 1e-9 for t in plan.arrival_times)

    def test_poisson_skips_silent_windows(self, workload):
        program = PiecewiseShape(
            segments=(
                (10.0, ConstantShape(level_value=1.0)),
                (10.0, ConstantShape(level_value=0.0)),
                (10.0, ConstantShape(level_value=1.0)),
            )
        )
        plan = shaped_plan(
            workload, qps=2.0, shape=program, num_requests=40,
            stream=RandomStream(0, "silent"), task_pool_size=8,
        )
        assert not [t for t in plan.arrival_times if 10.0 < t <= 20.0]
        assert [t for t in plan.arrival_times if t > 20.0]

    def test_all_zero_plan_rejected(self, workload):
        program = PiecewiseShape(
            segments=(
                (10.0, ConstantShape(level_value=0.0)),
                (10.0, ConstantShape(level_value=1.0)),
            )
        )
        with pytest.raises(ValueError, match="no arrivals"):
            shaped_plan(
                workload, qps=1.0, shape=program, num_requests=10,
                stream=RandomStream(0, "z"), task_pool_size=8, process="uniform",
                duration_s=10.0,
            )

    def test_rejects_bad_inputs(self, workload):
        with pytest.raises(ValueError, match="RateShape"):
            shaped_plan(
                workload, qps=1.0, shape="burst", num_requests=5,
                stream=RandomStream(0, "x"),
            )
        with pytest.raises(ValueError, match="duration_s"):
            shaped_plan(
                workload, qps=1.0, shape=ConstantShape(), num_requests=5,
                stream=RandomStream(0, "x"), duration_s=-1.0,
            )
        with pytest.raises(ValueError, match="poisson/uniform"):
            shaped_plan(
                workload, qps=1.0, shape=ConstantShape(), num_requests=5,
                stream=RandomStream(0, "x"), process="sequential",
            )


class TestShapedMixture:
    def _components(self, workload):
        other = create_workload("sharegpt", seed=1)
        return [("chat", workload, 0.5), ("agent", other, 0.5)]

    def test_unshaped_mixture_is_bit_for_bit_legacy(self, workload):
        components = self._components(workload)
        legacy = mixture_plan(
            components, qps=2.0, num_requests=20, stream=RandomStream(0, "m"),
            task_pool_size=8,
        )
        with_nones = [entry + (None,) for entry in components]
        modern = mixture_plan(
            with_nones, qps=2.0, num_requests=20, stream=RandomStream(0, "m"),
            task_pool_size=8, shape=ConstantShape(),
        )
        assert modern.arrival_times == legacy.arrival_times
        assert modern.tasks == legacy.tasks
        assert modern.traffic_classes == legacy.traffic_classes

    def test_per_class_shape_bursts_independently(self, workload):
        wave = SquareWaveShape(
            base_level=0.1, burst_level=5.0, period_s=30.0, burst_start_s=10.0,
            burst_s=10.0,
        )
        components = self._components(workload)
        shaped = [components[0] + (None,), components[1] + (wave,)]
        plan = mixture_plan(
            shaped, qps=3.0, num_requests=60, stream=RandomStream(0, "m"),
            task_pool_size=8,
        )
        agent_times = [
            t for t, label in zip(plan.arrival_times, plan.traffic_classes)
            if label == "agent"
        ]
        in_burst = [t for t in agent_times if 10.0 <= (t % 30.0) < 20.0]
        assert agent_times and len(in_burst) >= len(agent_times) * 0.6
        # The plan stays merged in time order with every arrival labelled.
        assert plan.arrival_times == sorted(plan.arrival_times)
        assert set(plan.traffic_classes) == {"chat", "agent"}

    def test_shaped_mixture_duration_semantics(self, workload):
        components = [entry + (None,) for entry in self._components(workload)]
        plan = mixture_plan(
            components, qps=2.0, num_requests=1000, stream=RandomStream(0, "m"),
            task_pool_size=8, process="uniform", duration_s=12.0,
        )
        assert plan.arrival_times[-1] <= 12.0
        # Two classes at 1 qps each => ~24 arrivals inside the span.
        assert len(plan) == 24

    def test_shaped_mixture_is_deterministic(self, workload):
        wave = SquareWaveShape(
            base_level=0.5, burst_level=2.0, period_s=20.0, burst_start_s=5.0,
            burst_s=5.0,
        )
        components = [entry + (wave,) for entry in self._components(workload)]
        first = mixture_plan(
            components, qps=2.0, num_requests=30, stream=RandomStream(7, "m"),
            task_pool_size=8,
        )
        second = mixture_plan(
            components, qps=2.0, num_requests=30, stream=RandomStream(7, "m"),
            task_pool_size=8,
        )
        assert first.arrival_times == second.arrival_times
        assert first.traffic_classes == second.traffic_classes
