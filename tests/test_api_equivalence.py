"""The new API must reproduce the seed entry points bit-for-bit.

The golden values below were captured by running the pre-redesign
``SingleRequestRunner`` / ``run_at_qps`` implementations (commit ``c26818c``)
at the exact configurations used here.  Every metric is asserted with zero
tolerance: one replica under FCFS scheduling through the unified API must be
event-for-event identical to the legacy hand-rolled wiring.
"""

from __future__ import annotations

import pytest

from repro.agents import AgentConfig
from repro.api import ArrivalSpec, ExperimentSpec, run_experiment
from repro.core import SingleRequestRunner
from repro.serving import ServingConfig, run_at_qps


class TestCharacterizationGolden:
    """SingleRequestRunner(model="8b", seed=1).run("react", "hotpotqa", num_tasks=3)."""

    GOLDEN = {
        "mean_latency": 16.668997844782456,
        "accuracy": 0.3333333333333333,
        "mean_energy_wh": 0.8561984437107726,
        "mean_llm_calls": 7.0,
        "mean_total_tokens": 7180.333333333333,
    }

    def _check(self, result):
        for metric, expected in self.GOLDEN.items():
            assert getattr(result, metric) == expected, metric

    def test_legacy_shim_matches_seed(self):
        runner = SingleRequestRunner(model="8b", seed=1)
        self._check(runner.run("react", "hotpotqa", num_tasks=3))

    def test_spec_through_new_api_matches_seed(self):
        spec = ExperimentSpec(
            agent="react",
            workload="hotpotqa",
            model="8b",
            replicas=1,
            scheduler="fcfs",
            arrival=ArrivalSpec(process="single", num_requests=3),
            seed=1,
        )
        outcome = run_experiment(spec)
        self._check(outcome.characterization)
        # Unified interface agrees with the wrapped result.
        assert outcome.mean_latency == self.GOLDEN["mean_latency"]
        assert outcome.accuracy == self.GOLDEN["accuracy"]


class TestServingGolden:
    """run_at_qps(react/hotpotqa, qps=1.0, 10 requests, pool 8, seed 0)."""

    GOLDEN = {
        "mean_latency": 10.870826106902523,
        "p95_latency": 15.505812430261916,
        "energy_wh": 1.55705991896767,
        "throughput_qps": 0.43405991885767026,
        "duration": 23.038293944111054,
        # Chunked decode now reserves KV blocks for the whole chunk up front
        # (it previously appended chunk tokens against a one-token
        # reservation), so active-block accounting is higher than the
        # original seed value of 143263924.27464935.
        "kv_average_bytes": 145131482.13128176,
        "preemptions": 0,
        "prefix_cache_hit_rate": 0.9135721327637201,
    }

    def _config(self) -> ServingConfig:
        return ServingConfig(
            agent="react",
            benchmark="hotpotqa",
            model="8b",
            agent_config=AgentConfig(max_iterations=5),
            max_decode_chunk=8,
            seed=0,
        )

    def _spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            agent="react",
            workload="hotpotqa",
            model="8b",
            replicas=1,
            scheduler="fcfs",
            agent_config=AgentConfig(max_iterations=5),
            arrival=ArrivalSpec(process="poisson", qps=1.0, num_requests=10, task_pool_size=8),
            seed=0,
            max_decode_chunk=8,
        )

    def _check(self, result):
        for metric, expected in self.GOLDEN.items():
            assert getattr(result, metric) == expected, metric

    def test_legacy_shim_matches_seed(self):
        self._check(run_at_qps(self._config(), qps=1.0, num_requests=10, task_pool_size=8))

    def test_spec_through_new_api_matches_seed(self):
        outcome = run_experiment(self._spec())
        self._check(outcome.serving)
        assert outcome.throughput_qps == self.GOLDEN["throughput_qps"]

    def test_shim_and_api_produce_identical_distributions(self):
        shim = run_at_qps(self._config(), qps=1.0, num_requests=10, task_pool_size=8)
        api = run_experiment(self._spec()).serving
        assert shim.latencies == api.latencies
        assert shim.config == api.config

    def test_chatbot_serving_golden(self):
        config = ServingConfig(
            agent="chatbot", benchmark="sharegpt", model="8b", max_decode_chunk=8, seed=3
        )
        result = run_at_qps(config, qps=4.0, num_requests=12, task_pool_size=8)
        assert result.mean_latency == 5.165153545879206
        assert result.p95_latency == 9.76467261074811
        assert result.energy_wh == 1.0307809818002893
        assert result.throughput_qps == 0.8750023061426455


class TestTrafficProgramCompat:
    """Shapes and studies must not perturb the legacy surfaces they wrap."""

    def _spec(self, **overrides) -> ExperimentSpec:
        base = dict(
            agent="react",
            workload="hotpotqa",
            model="8b",
            replicas=1,
            scheduler="fcfs",
            agent_config=AgentConfig(max_iterations=5),
            arrival=ArrivalSpec(
                process="poisson", qps=1.0, num_requests=10, task_pool_size=8
            ),
            seed=0,
            max_decode_chunk=8,
        )
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_legacy_spec_has_no_shape(self):
        spec = self._spec()
        assert spec.arrival.shape is None
        assert spec.arrival.duration_s is None

    def test_identity_shape_matches_golden_bit_for_bit(self):
        from repro.api import run_experiment
        from repro.serving.shapes import ConstantShape

        shaped = self._spec(
            arrival=ArrivalSpec(
                process="poisson", qps=1.0, num_requests=10, task_pool_size=8,
                shape=ConstantShape(),
            )
        )
        outcome = run_experiment(shaped)
        for metric, expected in TestServingGolden.GOLDEN.items():
            assert getattr(outcome.serving, metric) == expected, metric

    def test_run_sweep_is_byte_identical_to_one_axis_study(self):
        from repro.api import StudyAxis, StudySpec, run_experiment, run_sweep, run_study

        spec = self._spec()
        qps_values = (0.5, 1.0)
        sweep = run_sweep(spec, qps_values)
        study = run_study(
            StudySpec(base=spec, axes=(StudyAxis(name="qps", values=qps_values),))
        )
        manual = [run_experiment(spec.at_qps(qps)).serving for qps in qps_values]
        for via_sweep, via_study, direct in zip(
            sweep.results, (point.outcome.serving for point in study.points), manual
        ):
            assert via_sweep.latencies == direct.latencies
            assert via_study.latencies == direct.latencies
            assert via_sweep.energy_wh == direct.energy_wh
            assert via_study.energy_wh == direct.energy_wh
            assert via_sweep.duration == direct.duration

    def test_sweep_golden_pin(self):
        """run_sweep at the golden serving config reproduces the pinned point."""
        from repro.api import run_sweep

        sweep = run_sweep(self._spec(), [1.0])
        result = sweep.results[0]
        for metric, expected in TestServingGolden.GOLDEN.items():
            assert getattr(result, metric) == expected, metric


class TestResultSetInterface:
    def test_wraps_exactly_one_result(self):
        from repro.api import ResultSet

        with pytest.raises(ValueError):
            ResultSet(spec=ExperimentSpec())

    def test_serving_summary_fields(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=5, task_pool_size=5),
            max_decode_chunk=8,
        )
        outcome = run_experiment(spec)
        summary = outcome.summary()
        assert summary["kind"] == "serving"
        assert summary["num_completed"] == 5
        assert summary["throughput_qps"] == outcome.throughput_qps
        assert outcome.raw is outcome.serving

    def test_sequential_arrival_runs_closed_loop(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            arrival=ArrivalSpec(process="sequential", num_requests=3),
            max_decode_chunk=8,
        )
        outcome = run_experiment(spec)
        assert outcome.serving.offered_qps == 0.0
        assert outcome.num_completed == 3
        assert outcome.serving.duration == pytest.approx(sum(outcome.latencies), rel=0.05)

    def test_measurement_warmup_excludes_first_completions(self):
        arrival = ArrivalSpec(process="poisson", qps=2.0, num_requests=6, task_pool_size=5)
        base = ExperimentSpec(
            agent="chatbot", workload="sharegpt", arrival=arrival, max_decode_chunk=8
        )
        full = run_experiment(base)
        from repro.api import MeasurementSpec

        warm = run_experiment(base.with_overrides(measurement=MeasurementSpec(warmup_requests=2)))
        assert warm.num_completed == full.num_completed - 2
        assert warm.latencies == full.latencies[2:]
