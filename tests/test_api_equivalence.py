"""The new API must reproduce the seed entry points bit-for-bit.

The golden values below were captured by running the pre-redesign
``SingleRequestRunner`` / ``run_at_qps`` implementations (commit ``c26818c``)
at the exact configurations used here.  Every metric is asserted with zero
tolerance: one replica under FCFS scheduling through the unified API must be
event-for-event identical to the legacy hand-rolled wiring.
"""

from __future__ import annotations

import pytest

from repro.agents import AgentConfig
from repro.api import ArrivalSpec, ExperimentSpec, run_experiment
from repro.core import SingleRequestRunner
from repro.serving import ServingConfig, run_at_qps


class TestCharacterizationGolden:
    """SingleRequestRunner(model="8b", seed=1).run("react", "hotpotqa", num_tasks=3)."""

    GOLDEN = {
        "mean_latency": 16.668997844782456,
        "accuracy": 0.3333333333333333,
        "mean_energy_wh": 0.8561984437107726,
        "mean_llm_calls": 7.0,
        "mean_total_tokens": 7180.333333333333,
    }

    def _check(self, result):
        for metric, expected in self.GOLDEN.items():
            assert getattr(result, metric) == expected, metric

    def test_legacy_shim_matches_seed(self):
        runner = SingleRequestRunner(model="8b", seed=1)
        self._check(runner.run("react", "hotpotqa", num_tasks=3))

    def test_spec_through_new_api_matches_seed(self):
        spec = ExperimentSpec(
            agent="react",
            workload="hotpotqa",
            model="8b",
            replicas=1,
            scheduler="fcfs",
            arrival=ArrivalSpec(process="single", num_requests=3),
            seed=1,
        )
        outcome = run_experiment(spec)
        self._check(outcome.characterization)
        # Unified interface agrees with the wrapped result.
        assert outcome.mean_latency == self.GOLDEN["mean_latency"]
        assert outcome.accuracy == self.GOLDEN["accuracy"]


class TestServingGolden:
    """run_at_qps(react/hotpotqa, qps=1.0, 10 requests, pool 8, seed 0)."""

    GOLDEN = {
        "mean_latency": 10.870826106902523,
        "p95_latency": 15.505812430261916,
        "energy_wh": 1.55705991896767,
        "throughput_qps": 0.43405991885767026,
        "duration": 23.038293944111054,
        "kv_average_bytes": 143263924.27464935,
        "preemptions": 0,
        "prefix_cache_hit_rate": 0.9135721327637201,
    }

    def _config(self) -> ServingConfig:
        return ServingConfig(
            agent="react",
            benchmark="hotpotqa",
            model="8b",
            agent_config=AgentConfig(max_iterations=5),
            max_decode_chunk=8,
            seed=0,
        )

    def _spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            agent="react",
            workload="hotpotqa",
            model="8b",
            replicas=1,
            scheduler="fcfs",
            agent_config=AgentConfig(max_iterations=5),
            arrival=ArrivalSpec(process="poisson", qps=1.0, num_requests=10, task_pool_size=8),
            seed=0,
            max_decode_chunk=8,
        )

    def _check(self, result):
        for metric, expected in self.GOLDEN.items():
            assert getattr(result, metric) == expected, metric

    def test_legacy_shim_matches_seed(self):
        self._check(run_at_qps(self._config(), qps=1.0, num_requests=10, task_pool_size=8))

    def test_spec_through_new_api_matches_seed(self):
        outcome = run_experiment(self._spec())
        self._check(outcome.serving)
        assert outcome.throughput_qps == self.GOLDEN["throughput_qps"]

    def test_shim_and_api_produce_identical_distributions(self):
        shim = run_at_qps(self._config(), qps=1.0, num_requests=10, task_pool_size=8)
        api = run_experiment(self._spec()).serving
        assert shim.latencies == api.latencies
        assert shim.config == api.config

    def test_chatbot_serving_golden(self):
        config = ServingConfig(
            agent="chatbot", benchmark="sharegpt", model="8b", max_decode_chunk=8, seed=3
        )
        result = run_at_qps(config, qps=4.0, num_requests=12, task_pool_size=8)
        assert result.mean_latency == 5.165153545879206
        assert result.p95_latency == 9.76467261074811
        assert result.energy_wh == 1.0307809818002893
        assert result.throughput_qps == 0.8750023061426455


class TestResultSetInterface:
    def test_wraps_exactly_one_result(self):
        from repro.api import ResultSet

        with pytest.raises(ValueError):
            ResultSet(spec=ExperimentSpec())

    def test_serving_summary_fields(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=5, task_pool_size=5),
            max_decode_chunk=8,
        )
        outcome = run_experiment(spec)
        summary = outcome.summary()
        assert summary["kind"] == "serving"
        assert summary["num_completed"] == 5
        assert summary["throughput_qps"] == outcome.throughput_qps
        assert outcome.raw is outcome.serving

    def test_sequential_arrival_runs_closed_loop(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            arrival=ArrivalSpec(process="sequential", num_requests=3),
            max_decode_chunk=8,
        )
        outcome = run_experiment(spec)
        assert outcome.serving.offered_qps == 0.0
        assert outcome.num_completed == 3
        assert outcome.serving.duration == pytest.approx(sum(outcome.latencies), rel=0.05)

    def test_measurement_warmup_excludes_first_completions(self):
        arrival = ArrivalSpec(process="poisson", qps=2.0, num_requests=6, task_pool_size=5)
        base = ExperimentSpec(
            agent="chatbot", workload="sharegpt", arrival=arrival, max_decode_chunk=8
        )
        full = run_experiment(base)
        from repro.api import MeasurementSpec

        warm = run_experiment(base.with_overrides(measurement=MeasurementSpec(warmup_requests=2)))
        assert warm.num_completed == full.num_completed - 2
        assert warm.latencies == full.latencies[2:]
