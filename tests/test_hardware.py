"""Heterogeneous hardware: catalog, HardwareSpec, cost accounting, planning.

Covers the GPU catalog registry (round-trips, aliases, unknown-name errors),
HardwareSpec validation and serialisation, per-GPU model-fit errors, the
golden pin (specs with ``hardware=None`` -- and with the explicit paper
default -- reproduce the default path bit for bit), cost/energy metric
accounting, cost-aware pool classification, the FleetPlanner, and the
autoscaler's planner-driven floor.
"""

from __future__ import annotations

import pytest

from repro.api import (
    ArrivalSpec,
    ExperimentSpec,
    FleetPlanner,
    HardwareSpec,
    MeasurementSpec,
    PoolSpec,
    StudyAxis,
    StudySpec,
    WeightedWorkload,
    resolve_metric,
    run_experiment,
    run_study,
)
from repro.llm import (
    A100_40GB,
    A100_80GB,
    ClusterSpec,
    EngineConfig,
    GPU_CATALOG,
    GPUSpec,
    H100_80GB,
    L4_24GB,
    LLAMA_3_1_70B,
    LLAMA_3_1_8B,
    available_gpus,
    cluster_for_model,
    get_gpu,
    register_gpu,
)
from repro.llm.models import ModelSpec
from repro.serving.autoscaler import Autoscaler
from repro.serving.cluster import Cluster, ReplicaPool
from repro.sim import Environment


# ---------------------------------------------------------------------------
# GPU catalog registry
# ---------------------------------------------------------------------------


class TestGpuCatalog:
    def test_builtin_entries_resolve(self):
        assert get_gpu("A100-40GB") is A100_40GB
        assert get_gpu("A100-80GB") is A100_80GB
        assert get_gpu("H100-80GB") is H100_80GB
        assert get_gpu("L4") is L4_24GB

    def test_lookup_by_canonical_name_and_case_insensitive(self):
        assert get_gpu("A100-SXM4-40GB") is A100_40GB
        assert get_gpu("h100-80gb") is H100_80GB
        assert get_gpu(" L4 ") is L4_24GB

    def test_unknown_gpu_names_catalog(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            get_gpu("TPU-v5e")

    def test_available_gpus_sorted_distinct(self):
        names = available_gpus()
        assert names == tuple(sorted(names))
        assert len(names) == len(set(names))
        assert A100_40GB.name in names
        assert L4_24GB.name in names

    def test_register_round_trip_with_aliases(self):
        spec = GPUSpec(
            name="TEST-GPU-1",
            peak_flops=1e12,
            mem_bandwidth=1e11,
            mem_capacity=16e9,
            idle_power_w=10.0,
            decode_power_w=50.0,
            prefill_power_w=80.0,
            cost_per_hour=0.5,
        )
        try:
            assert register_gpu(spec, aliases=("TG1",)) is spec
            assert get_gpu("test-gpu-1") is spec
            assert get_gpu("TG1") is spec
            assert "TEST-GPU-1" in available_gpus()
            assert HardwareSpec(gpu="TG1").resolve().gpu is spec
        finally:
            del GPU_CATALOG["test-gpu-1"]
            del GPU_CATALOG["tg1"]

    def test_register_rejects_non_gpuspec(self):
        with pytest.raises(TypeError, match="GPUSpec"):
            register_gpu({"name": "not-a-spec"})

    def test_catalog_prices_present(self):
        assert A100_40GB.cost_per_hour == pytest.approx(3.67)
        assert H100_80GB.cost_per_hour > A100_80GB.cost_per_hour > A100_40GB.cost_per_hour
        assert L4_24GB.cost_per_hour < A100_40GB.cost_per_hour


# ---------------------------------------------------------------------------
# ClusterSpec: TP bounds, pricing, roofline decode
# ---------------------------------------------------------------------------


class TestClusterSpecBounds:
    def test_tensor_parallel_sixteen_rejected(self):
        with pytest.raises(ValueError, match="calibrated range 1..8"):
            ClusterSpec(gpu=A100_40GB, tensor_parallel=16)

    def test_tensor_parallel_zero_rejected(self):
        with pytest.raises(ValueError, match="calibrated range"):
            ClusterSpec(gpu=A100_40GB, tensor_parallel=0)

    def test_error_names_gpu(self):
        with pytest.raises(ValueError, match=H100_80GB.name.replace("-", "[-]")):
            ClusterSpec(gpu=H100_80GB, tensor_parallel=12)

    def test_cluster_cost_per_hour_scales_with_tp(self):
        assert ClusterSpec(gpu=A100_40GB, tensor_parallel=1).cost_per_hour == (
            pytest.approx(3.67)
        )
        assert ClusterSpec(gpu=A100_40GB, tensor_parallel=8).cost_per_hour == (
            pytest.approx(8 * 3.67)
        )

    def test_oversized_model_error_suggests_catalog(self):
        huge = ModelSpec(
            name="huge-test-model", n_params=400e9, n_layers=120,
            hidden_size=16384, n_heads=128, n_kv_heads=8,
            intermediate_size=53248, vocab_size=128256,
        )
        with pytest.raises(ValueError, match="pick a larger-memory GPU"):
            cluster_for_model(huge)

    def test_decode_seconds_per_token_orders_generations(self):
        a100 = ClusterSpec(gpu=A100_40GB).decode_seconds_per_token(LLAMA_3_1_8B)
        h100 = ClusterSpec(gpu=H100_80GB).decode_seconds_per_token(LLAMA_3_1_8B)
        l4 = ClusterSpec(gpu=L4_24GB).decode_seconds_per_token(LLAMA_3_1_8B)
        assert h100 < a100 < l4


# ---------------------------------------------------------------------------
# HardwareSpec: validation, serialisation, fit
# ---------------------------------------------------------------------------


class TestHardwareSpec:
    def test_resolve_default_is_paper_cluster(self):
        assert HardwareSpec().resolve() == cluster_for_model(LLAMA_3_1_8B)

    def test_gpuspec_instance_coerced_to_name(self):
        spec = HardwareSpec(gpu=H100_80GB)
        assert spec.gpu == H100_80GB.name
        assert spec.resolve().gpu is H100_80GB

    def test_unknown_gpu_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            HardwareSpec(gpu="B300")

    def test_tensor_parallel_bounds(self):
        with pytest.raises(ValueError, match="calibrated range"):
            HardwareSpec(tensor_parallel=16)
        with pytest.raises(ValueError, match="calibrated range"):
            HardwareSpec(tensor_parallel=0)

    def test_memory_utilization_bounds(self):
        with pytest.raises(ValueError, match="gpu_memory_utilization"):
            HardwareSpec(gpu_memory_utilization=0.0)
        with pytest.raises(ValueError, match="gpu_memory_utilization"):
            HardwareSpec(gpu_memory_utilization=1.2)

    def test_dict_round_trip(self):
        spec = HardwareSpec(gpu="H100-80GB", tensor_parallel=4,
                            gpu_memory_utilization=0.85)
        data = spec.to_dict()
        assert data == {
            "gpu": H100_80GB.name,
            "tensor_parallel": 4,
            "gpu_memory_utilization": 0.85,
        }
        assert HardwareSpec.from_dict(data) == spec

    @pytest.mark.parametrize(
        "gpu,tensor_parallel",
        [("L4", 1), ("L4", 4), ("H100-80GB", 1), ("H100-80GB", 2)],
    )
    def test_70b_does_not_fit(self, gpu, tensor_parallel):
        cluster = HardwareSpec(gpu=gpu, tensor_parallel=tensor_parallel).resolve()
        with pytest.raises(ValueError, match="does not fit"):
            cluster.kv_cache_bytes(LLAMA_3_1_70B)

    def test_70b_fits_four_h100(self):
        cluster = HardwareSpec(gpu="H100-80GB", tensor_parallel=4).resolve()
        assert cluster.kv_cache_bytes(LLAMA_3_1_70B) > 0

    def test_8b_fits_one_l4(self):
        cluster = HardwareSpec(gpu="L4").resolve()
        assert cluster.kv_cache_bytes(LLAMA_3_1_8B) > 0


# ---------------------------------------------------------------------------
# Spec threading: PoolSpec / ExperimentSpec
# ---------------------------------------------------------------------------


class TestSpecThreading:
    def test_pool_hardware_shorthand_coercion(self):
        by_str = PoolSpec(name="p", model="8b", hardware="H100-80GB")
        by_dict = PoolSpec(name="p", model="8b", hardware={"gpu": "H100-80GB"})
        assert by_str.hardware == HardwareSpec(gpu="H100-80GB")
        assert by_dict.hardware == by_str.hardware

    def test_pool_fit_error_names_pool(self):
        with pytest.raises(ValueError, match="pool 'big'.*does not fit"):
            PoolSpec(name="big", model="70b", hardware="L4")

    def test_experiment_hardware_fit_checked_against_model(self):
        with pytest.raises(ValueError, match="does not fit"):
            ExperimentSpec(model="70b", hardware=HardwareSpec(gpu="L4"))

    def test_cost_aware_requires_slo(self):
        pools = (
            PoolSpec(name="fast", model="8b", traffic_classes=("chat",)),
            PoolSpec(name="cheap", model="8b", traffic_classes=("agent",),
                     hardware="L4"),
        )
        with pytest.raises(ValueError, match="cost-aware.*SLO"):
            ExperimentSpec(pools=pools, pool_classification="cost-aware")

    def test_unknown_classification_rejected(self):
        with pytest.raises(ValueError, match="pool_classification"):
            ExperimentSpec(pool_classification="greedy")

    def test_spec_dict_round_trip_with_hardware(self):
        spec = ExperimentSpec(
            pools=(
                PoolSpec(name="chat", model="8b", traffic_classes=("chat",),
                         hardware="H100-80GB"),
                PoolSpec(name="agent", model="8b", traffic_classes=("agent",),
                         hardware=HardwareSpec(gpu="L4")),
            ),
            workloads=(
                WeightedWorkload(agent="chatbot", workload="sharegpt",
                                 weight=0.6, name="chat"),
                WeightedWorkload(agent="react", workload="hotpotqa",
                                 weight=0.4, name="agent"),
            ),
            arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=4),
            hardware=None,
        )
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.pools[0].hardware == HardwareSpec(gpu="H100-80GB")
        assert clone.pools[1].hardware == HardwareSpec(gpu="L4")
        assert clone == spec

    def test_experiment_hardware_dict_round_trip(self):
        spec = ExperimentSpec(hardware=HardwareSpec(gpu="A100-80GB",
                                                    tensor_parallel=2))
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.hardware == spec.hardware

    def test_hardware_axis_round_trips_through_study_dict(self):
        study = StudySpec(
            base=ExperimentSpec(),
            axes=(
                StudyAxis(
                    name="hw",
                    field="hardware",
                    values=(HardwareSpec(gpu="A100-40GB"),
                            HardwareSpec(gpu="H100-80GB")),
                    labels=("a100", "h100"),
                ),
            ),
            name="hw-study",
        )
        clone = StudySpec.from_dict(study.to_dict())
        assert clone.axes[0].values == study.axes[0].values


# ---------------------------------------------------------------------------
# Golden pin: hardware=None changes nothing
# ---------------------------------------------------------------------------


def small_serving_spec(**overrides) -> ExperimentSpec:
    base = dict(
        agent="chatbot",
        workload="sharegpt",
        arrival=ArrivalSpec(process="poisson", qps=4.0, num_requests=10,
                            task_pool_size=6),
        max_decode_chunk=8,
        seed=0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestGoldenPin:
    def test_explicit_paper_default_is_identity(self):
        default_run = run_experiment(small_serving_spec())
        pinned_run = run_experiment(
            small_serving_spec(hardware=HardwareSpec(gpu="A100-40GB"))
        )
        assert pinned_run.latencies == default_run.latencies
        assert pinned_run.summary() == default_run.summary()

    def test_pool_level_explicit_default_is_identity(self):
        def fleet(hardware):
            return small_serving_spec(
                pools=(
                    PoolSpec(name="chat", model="8b", traffic_classes=("chat",),
                             hardware=hardware),
                ),
                workloads=(
                    WeightedWorkload(agent="chatbot", workload="sharegpt",
                                     weight=1.0, name="chat"),
                ),
            )

        unset = run_experiment(fleet(None))
        pinned = run_experiment(fleet(HardwareSpec(gpu="A100-40GB")))
        assert pinned.latencies == unset.latencies
        assert pinned.summary() == unset.summary()

    def test_non_default_hardware_changes_latencies(self):
        default_run = run_experiment(small_serving_spec())
        h100_run = run_experiment(
            small_serving_spec(hardware=HardwareSpec(gpu="H100-80GB"))
        )
        assert h100_run.latencies != default_run.latencies
        assert h100_run.mean_latency < default_run.mean_latency


# ---------------------------------------------------------------------------
# Cost and energy accounting
# ---------------------------------------------------------------------------


class TestCostAccounting:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_experiment(small_serving_spec())

    def test_cost_is_priced_replica_seconds(self, outcome):
        expected = outcome.replica_seconds / 3600.0 * A100_40GB.cost_per_hour
        assert outcome.cost_usd == pytest.approx(expected)
        assert outcome.cost_usd > 0

    def test_cost_per_1k_tokens(self, outcome):
        assert outcome.served_tokens > 0
        expected = outcome.cost_usd / (outcome.served_tokens / 1000.0)
        assert outcome.cost_per_1k_tokens == pytest.approx(expected)

    def test_energy_joules_match_watt_hours(self, outcome):
        assert outcome.energy_j == pytest.approx(outcome.energy_wh * 3600.0)

    def test_summary_reports_cost(self, outcome):
        summary = outcome.summary()
        assert summary["cost_usd"] == pytest.approx(outcome.cost_usd)
        assert summary["energy_j"] == pytest.approx(outcome.energy_j)
        assert summary["cost_per_1k_tokens"] == pytest.approx(
            outcome.cost_per_1k_tokens
        )

    def test_cost_metrics_resolve_for_studies(self, outcome):
        assert resolve_metric(outcome, "cost_usd") == pytest.approx(outcome.cost_usd)
        assert resolve_metric(outcome, "cost_per_1k_tokens") == pytest.approx(
            outcome.cost_per_1k_tokens
        )
        assert resolve_metric(outcome, "energy_j") == pytest.approx(outcome.energy_j)

    def test_pool_stats_carry_pricing(self, outcome):
        stats = outcome.serving.pool_stats["default"]
        assert stats.gpu == A100_40GB.name
        assert stats.cost_per_hour == pytest.approx(A100_40GB.cost_per_hour)
        assert stats.cost_usd == pytest.approx(outcome.cost_usd)
        assert "cost_usd" in stats.as_dict()

    def test_per_pool_hardware_prices_pools_separately(self):
        spec = small_serving_spec(
            pools=(
                PoolSpec(name="chat", model="8b", traffic_classes=("chat",),
                         hardware="H100-80GB"),
                PoolSpec(name="agent", model="8b", traffic_classes=("agent",),
                         hardware="L4"),
            ),
            workloads=(
                WeightedWorkload(agent="chatbot", workload="sharegpt",
                                 weight=0.6, name="chat"),
                WeightedWorkload(agent="react", workload="hotpotqa",
                                 weight=0.4, name="agent"),
            ),
        )
        outcome = run_experiment(spec)
        chat = outcome.serving.pool_stats["chat"]
        agent = outcome.serving.pool_stats["agent"]
        assert chat.gpu == H100_80GB.name
        assert agent.gpu == L4_24GB.name
        assert chat.cost_per_hour == pytest.approx(H100_80GB.cost_per_hour)
        assert agent.cost_per_hour == pytest.approx(L4_24GB.cost_per_hour)
        assert outcome.cost_usd == pytest.approx(chat.cost_usd + agent.cost_usd)


# ---------------------------------------------------------------------------
# Cost-aware pool classification
# ---------------------------------------------------------------------------


def make_pool(env: Environment, name: str, gpu: str) -> ReplicaPool:
    config = EngineConfig(cluster=HardwareSpec(gpu=gpu).resolve())
    return ReplicaPool(env, config, name=name, num_replicas=1)


class TestCostAwareClassification:
    def _cluster(self, class_slos=None, default_slo=None):
        env = Environment()
        cheap = make_pool(env, "cheap", "L4")
        fast = make_pool(env, "fast", "H100-80GB")
        cluster = Cluster(
            env,
            pools=[cheap, fast],
            pool_spill_threshold=None,
            classification="cost-aware",
            class_slos=class_slos,
            default_slo=default_slo,
        )
        return cluster, cheap, fast

    def _request(self, output_tokens: int):
        from repro.llm.request import LLMRequest, SamplingParams
        from repro.llm.tokenizer import Prompt, SegmentKind, SyntheticTokenizer

        prompt = Prompt()
        prompt.append(
            SyntheticTokenizer().span(SegmentKind.USER, f"s{output_tokens}", 32)
        )
        request = LLMRequest(
            prompt=prompt, sampling=SamplingParams(output_tokens=output_tokens)
        )
        request.metadata["traffic_class"] = "chat"
        return request

    def test_loose_slo_routes_to_cheapest(self):
        cluster, cheap, _fast = self._cluster(class_slos={"chat": 60.0})
        assert cluster._classify(self._request(output_tokens=64)) is cheap

    def test_tight_slo_escalates_to_fast_pool(self):
        cluster, cheap, fast = self._cluster(class_slos={"chat": 2.0})
        # 64 tokens at the L4's ~0.09 s/token roofline blows a 2 s budget;
        # the H100 holds it.
        assert cluster._classify(self._request(output_tokens=64)) is fast

    def test_impossible_slo_falls_back_to_fastest(self):
        cluster, _cheap, fast = self._cluster(class_slos={"chat": 1e-6})
        assert cluster._classify(self._request(output_tokens=64)) is fast

    def test_no_slo_falls_back_to_static(self):
        cluster, cheap, _fast = self._cluster(class_slos={"batch": 60.0})
        # "chat" has no SLO and no pool claims the class: static default pool.
        assert cluster._classify(self._request(output_tokens=64)) is cheap

    def test_default_slo_covers_unlabelled_classes(self):
        cluster, _cheap, fast = self._cluster(default_slo=2.0)
        assert cluster._classify(self._request(output_tokens=64)) is fast

    def test_unknown_classification_mode_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="unknown pool classification"):
            Cluster(env, EngineConfig(), classification="greedy")

    def test_end_to_end_cost_aware_run(self):
        spec = small_serving_spec(
            pools=(
                PoolSpec(name="fast", model="8b", hardware="H100-80GB"),
                PoolSpec(name="cheap", model="8b", hardware="L4"),
            ),
            workloads=(
                WeightedWorkload(agent="chatbot", workload="sharegpt",
                                 weight=1.0, name="chat"),
            ),
            pool_classification="cost-aware",
            measurement=MeasurementSpec(class_slos=(("chat", 30.0),)),
        )
        outcome = run_experiment(spec)
        assert outcome.num_completed == 10
        served = {
            name: stats.completed_llm_requests
            for name, stats in outcome.serving.pool_stats.items()
        }
        # A loose SLO keeps the cheap pool doing the work.
        assert served["cheap"] > 0


# ---------------------------------------------------------------------------
# FleetPlanner
# ---------------------------------------------------------------------------


class TestFleetPlanner:
    @pytest.fixture(scope="class")
    def study(self):
        base = small_serving_spec()
        return run_study(
            StudySpec(
                base=base,
                axes=(
                    StudyAxis(
                        name="hw",
                        field="hardware",
                        values=(
                            HardwareSpec(gpu="A100-40GB"),
                            HardwareSpec(gpu="H100-80GB"),
                            HardwareSpec(gpu="L4"),
                        ),
                        labels=("a100", "h100", "l4"),
                    ),
                ),
                name="hw-sweep",
            )
        )

    @pytest.fixture(scope="class")
    def planner(self, study):
        return FleetPlanner(
            study, cost="cost_per_1k_tokens", quality="p95_latency",
            minimize_quality=True,
        )

    def test_frontier_sorted_by_cost(self, planner):
        costs = [entry.cost for entry in planner.frontier]
        assert costs == sorted(costs)
        assert planner.frontier  # non-empty

    def test_budget_pick_fits_budget(self, planner):
        budget = max(entry.cost for entry in planner.frontier)
        plan = planner.plan_for_budget(budget)
        assert plan.cost <= budget
        # Best quality among affordable points (minimised metric).
        assert plan.quality == min(entry.quality for entry in planner.frontier)

    def test_blown_budget_falls_back_to_cheapest(self, planner):
        cheapest = min(entry.cost for entry in planner.frontier)
        plan = planner.plan_for_budget(cheapest / 10.0)
        assert plan.cost == pytest.approx(cheapest)

    def test_target_pick_is_cheapest_meeting_target(self, planner):
        target = max(entry.quality for entry in planner.frontier)
        plan = planner.plan_for_target(target)
        meeting = [e for e in planner.frontier if e.quality <= target]
        assert plan.cost == pytest.approx(min(e.cost for e in meeting))

    def test_unreachable_target_falls_back_to_best_quality(self, planner):
        plan = planner.plan_for_target(0.0)
        assert plan.quality == min(entry.quality for entry in planner.frontier)

    def test_plan_carries_pool_targets_and_labels(self, planner):
        plan = planner.plan_for_budget(float("inf"))
        assert plan.pool_targets == {"default": 1}
        assert plan.labels.get("hw") in ("a100", "h100", "l4")
        assert "plan[" in plan.describe()

    def test_empty_study_rejected(self, study):
        from repro.api.study import StudyResult

        with pytest.raises(ValueError, match="at least one point"):
            FleetPlanner(StudyResult(study=study.study, points=[]))


# ---------------------------------------------------------------------------
# Autoscaler planned-target floor
# ---------------------------------------------------------------------------


class FloorPool:
    """Minimal pool surface for driving the Autoscaler loop."""

    def __init__(self, pending: int = 0, provisioned: int = 1):
        self.name = "floor"
        self.num_pending_requests = pending
        self.num_provisioned = provisioned
        self.num_active = provisioned
        self.grow_reasons: list = []
        self.shrink_count = 0
        self._env = None

    def grow(self, warmup_s: float = 0.0, reason: str = "") -> int:
        self.grow_reasons.append(reason)
        self.num_provisioned += 1
        self.num_active += 1
        return self.num_provisioned - 1

    def shrink(self, reason: str = "") -> int:
        self.shrink_count += 1
        self.num_provisioned -= 1
        self.num_active -= 1
        return self.num_provisioned

    def pending_predicted_tokens(self, predictor) -> float:
        return float(self.num_pending_requests) * 10.0


def make_floor_autoscaler(env, pool, **overrides) -> Autoscaler:
    pool._env = env
    defaults = dict(
        min_replicas=1,
        max_replicas=8,
        check_interval_s=1.0,
        warmup_s=0.0,
        scale_up_pending_per_replica=2.0,
        scale_down_pending_per_replica=0.5,
    )
    defaults.update(overrides)
    return Autoscaler(env, pool, **defaults)


class TestPlannedTarget:
    def test_grows_toward_planned_target(self):
        env = Environment()
        pool = FloorPool(pending=0, provisioned=1)
        scaler = make_floor_autoscaler(env, pool)
        scaler.set_planned_target(3)
        env.run(until=2.5)
        assert pool.num_provisioned == 3
        assert any(reason.startswith("planned target") for reason in pool.grow_reasons)

    def test_idle_pool_never_shrinks_below_floor(self):
        env = Environment()
        pool = FloorPool(pending=0, provisioned=3)
        scaler = make_floor_autoscaler(env, pool)
        scaler.set_planned_target(3)
        env.run(until=8.5)
        assert pool.num_provisioned == 3
        assert pool.shrink_count == 0

    def test_clearing_target_restores_reactive_shrink(self):
        env = Environment()
        pool = FloorPool(pending=0, provisioned=3)
        scaler = make_floor_autoscaler(env, pool)
        scaler.set_planned_target(3)
        env.run(until=3.5)
        assert pool.num_provisioned == 3
        scaler.set_planned_target(None)
        env.run(until=10.5)
        assert pool.num_provisioned < 3

    def test_target_clamped_to_replica_bounds(self):
        env = Environment()
        pool = FloorPool(provisioned=1)
        scaler = make_floor_autoscaler(env, pool, max_replicas=4)
        scaler.set_planned_target(100)
        assert scaler.planned_target == 4
        scaler.set_planned_target(0)
        assert scaler.planned_target == 1

    def test_pressure_can_still_grow_above_floor(self):
        env = Environment()
        pool = FloorPool(pending=100, provisioned=1)
        scaler = make_floor_autoscaler(env, pool, max_replicas=6)
        scaler.set_planned_target(2)
        env.run(until=6.5)
        assert pool.num_provisioned > 2
