"""Predictive autoscaling + cooperative admission: units, invariants, pins.

Covers the ScalingEvent timeline invariants (monotonic timestamps, warm-up
accounting, cooldown enforcement), the predictive controller's sizing math
and cold-start fallback, the cooperative slo-shed projection, the new spec
vocabulary, and a golden pin: reactive-mode autoscaled runs reproduce the
pre-forecasting (PR-3) numbers bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.api import (
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    ExperimentSpec,
    MeasurementSpec,
    WeightedWorkload,
    run_experiment,
)
from repro.llm import EngineConfig
from repro.serving.admission import ADMIT, REJECT, SloShedAdmission
from repro.serving.autoscaler import Autoscaler
from repro.serving.cluster import ReplicaPool
from repro.serving.forecast import NoForecaster, WindowedRateForecaster
from repro.sim import Environment


class FakePool:
    """Minimal pool surface the Autoscaler control loop drives."""

    def __init__(self, pending: int = 0, provisioned: int = 1):
        self.name = "fake"
        self.num_pending_requests = pending
        self.num_provisioned = provisioned
        self.num_active = provisioned
        self.replicas: List = []
        self.grow_times: List[float] = []
        self.shrink_times: List[float] = []
        self._env: Optional[Environment] = None

    def grow(self, warmup_s: float = 0.0, reason: str = "") -> int:
        self.grow_times.append(self._env.now)
        self.num_provisioned += 1
        self.num_active += 1
        return self.num_provisioned - 1

    def shrink(self, reason: str = "") -> Optional[int]:
        self.shrink_times.append(self._env.now)
        self.num_provisioned -= 1
        self.num_active -= 1
        return self.num_provisioned

    def pending_predicted_tokens(self, predictor) -> float:
        return float(self.num_pending_requests) * 10.0


def make_autoscaler(env: Environment, pool: FakePool, **overrides) -> Autoscaler:
    pool._env = env
    defaults = dict(
        min_replicas=1,
        max_replicas=8,
        check_interval_s=1.0,
        warmup_s=0.0,
        scale_up_pending_per_replica=2.0,
        scale_down_pending_per_replica=0.5,
    )
    defaults.update(overrides)
    return Autoscaler(env, pool, **defaults)


# ---------------------------------------------------------------------------
# ScalingEvent timeline invariants
# ---------------------------------------------------------------------------


def predictive_spec(**overrides) -> ExperimentSpec:
    base = dict(
        workloads=(
            WeightedWorkload(agent="chatbot", workload="sharegpt", weight=0.5, name="chat"),
            WeightedWorkload(agent="react", workload="hotpotqa", weight=0.5, name="agent"),
        ),
        replicas=2,
        router="least-loaded",
        scheduler="sjf-by-predicted-decode",
        autoscaler=AutoscalerSpec(
            mode="predictive",
            forecaster="holt",
            horizon_s=8.0,
            min_replicas=2,
            max_replicas=5,
            check_interval_s=1.0,
            warmup_s=4.0,
            cooldown_s=2.0,
        ),
        measurement=MeasurementSpec(class_slos=(("chat", 16.0),)),
        arrival=ArrivalSpec(process="poisson", qps=8.0, num_requests=30, task_pool_size=8),
        max_decode_chunk=8,
        seed=0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestScalingEventTimeline:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_experiment(predictive_spec())

    def test_timestamps_monotonic(self, outcome):
        times = [event.time for event in outcome.serving.scaling_events]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_provisioned_counts_match_action_deltas(self, outcome):
        # Each event snapshots provisioned capacity *after* the action; the
        # sequence must be reproducible from the action deltas alone.
        provisioned = 2  # the pool's starting size
        for event in outcome.serving.scaling_events:
            provisioned += 1 if event.action == "grow" else -1
            assert event.num_provisioned == provisioned
            assert 1 <= event.num_provisioned <= 5

    def test_cooldown_enforced_between_actions(self, outcome):
        events = outcome.serving.scaling_events
        # Batched scale-ahead grows share one decision instant; *across*
        # instants the 2 s cooldown must hold.
        decision_times = sorted({event.time for event in events})
        gaps = [b - a for a, b in zip(decision_times, decision_times[1:])]
        assert all(gap >= 2.0 - 1e-9 for gap in gaps)

    def test_forecast_grows_record_their_reason(self, outcome):
        reasons = [
            event.reason
            for event in outcome.serving.scaling_events
            if event.action == "grow"
        ]
        assert any(reason.startswith("forecast=") for reason in reasons)


class TestWarmupAccounting:
    def test_grown_replica_warms_before_taking_traffic(self):
        env = Environment()
        pool = ReplicaPool(env, EngineConfig(), num_replicas=1)
        index = pool.grow(warmup_s=5.0, reason="test")
        assert pool.num_provisioned == 2
        assert pool.num_active == 1
        assert pool.num_warming == 1
        assert pool.warming_etas[index] == pytest.approx(5.0)
        # Landing visibility honours the horizon.
        assert pool.warming_replicas_within(0.0, 5.0) == 1
        assert pool.warming_replicas_within(0.0, 3.0) == 0
        env.run(until=6.0)
        assert pool.num_active == 2
        assert pool.num_warming == 0
        assert not pool.warming_etas

    def test_warming_replica_pays_from_grow_instant(self):
        env = Environment()
        pool = ReplicaPool(env, EngineConfig(), num_replicas=1)
        env.run(until=10.0)
        pool.grow(warmup_s=5.0, reason="test")
        env.run(until=12.0)
        # Original replica: 12 s.  Warming replica: 2 s (paid while booting).
        assert pool.replica_seconds_until() == pytest.approx(14.0)

    def test_instant_grow_skips_warming_state(self):
        env = Environment()
        pool = ReplicaPool(env, EngineConfig(), num_replicas=1)
        pool.grow(warmup_s=0.0, reason="test")
        assert pool.num_active == 2
        assert pool.num_warming == 0


class TestCooldownEnforcement:
    def test_reactive_cooldown_spaces_actions(self):
        env = Environment()
        pool = FakePool(pending=100, provisioned=1)
        make_autoscaler(env, pool, cooldown_s=3.0)
        env.run(until=10.5)
        gaps = [b - a for a, b in zip(pool.grow_times, pool.grow_times[1:])]
        assert pool.grow_times  # pressure forced growth
        assert all(gap >= 3.0 - 1e-9 for gap in gaps)

    def test_zero_cooldown_grows_every_heartbeat(self):
        env = Environment()
        pool = FakePool(pending=100, provisioned=1)
        make_autoscaler(env, pool, cooldown_s=0.0, max_replicas=4)
        env.run(until=5.5)
        assert pool.grow_times == [1.0, 2.0, 3.0]  # capped at max_replicas


# ---------------------------------------------------------------------------
# Predictive controller units
# ---------------------------------------------------------------------------


class TestPredictiveController:
    def test_predictive_mode_requires_forecaster(self):
        env = Environment()
        with pytest.raises(ValueError, match="forecaster"):
            make_autoscaler(env, FakePool(), mode="predictive")

    def test_unknown_mode_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="unknown autoscaler mode"):
            make_autoscaler(env, FakePool(), mode="proactive")

    def test_target_replicas_sizes_for_backlog_and_forecast(self):
        env = Environment()
        pool = FakePool(pending=10, provisioned=1)  # backlog: 100 tokens
        autoscaler = make_autoscaler(
            env, pool, mode="predictive", forecaster=NoForecaster(), horizon_s=10.0
        )
        # No completions -> mean tokens/request is 0, so demand is backlog
        # only: 100 tokens / (5 tokens/s * 10 s) = 2 replicas.
        assert autoscaler.target_replicas(0.0, per_replica_rate=5.0, forecast_rate=0.0) == 2
        # Clamped to the configured bounds.
        assert autoscaler.target_replicas(0.0, per_replica_rate=0.1, forecast_rate=0.0) == 8
        pool.num_pending_requests = 0
        assert autoscaler.target_replicas(0.0, per_replica_rate=5.0, forecast_rate=0.0) == 1

    def test_cold_start_falls_back_to_reactive_signals(self):
        # No completions -> no service-rate estimate -> queue pressure must
        # still grow the pool (the predictive target would divide by zero).
        env = Environment()
        pool = FakePool(pending=100, provisioned=1)
        make_autoscaler(
            env, pool, mode="predictive", forecaster=WindowedRateForecaster()
        )
        env.run(until=1.5)
        assert pool.grow_times == [1.0]

    def test_forecast_mae_requires_forecaster(self):
        env = Environment()
        reactive = make_autoscaler(env, FakePool())
        assert reactive.forecast_mae() is None


# ---------------------------------------------------------------------------
# Cooperative slo-shed projection
# ---------------------------------------------------------------------------


class StubProbe:
    """Probe whose drain signals are directly scripted by the test."""

    def __init__(self, backlog_drain: float, projected_drain: float):
        self.backlog_drain = backlog_drain
        self.projected_drain = projected_drain

    def backlog_drain_seconds(self, now, window_s):
        return self.backlog_drain

    def projected_drain_seconds(self, now, window_s, horizon_s):
        return self.projected_drain


class TestCooperativeSloShed:
    def make_gate(self, cooperative: bool, probe: StubProbe) -> SloShedAdmission:
        return SloShedAdmission(
            slo_p95_s=10.0,
            load_probe=probe,
            cooperative=cooperative,
            horizon_s=8.0,
        )

    def test_independent_gate_sheds_on_current_backlog(self):
        # Backlog projection violates the SLO; scale-ups landing soon would
        # clear it, but the independent gate cannot see them.
        probe = StubProbe(backlog_drain=20.0, projected_drain=2.0)
        assert self.make_gate(False, probe).decide(0.0, "agent") == REJECT

    def test_cooperative_gate_waits_for_inflight_scaleups(self):
        probe = StubProbe(backlog_drain=20.0, projected_drain=2.0)
        assert self.make_gate(True, probe).decide(0.0, "agent") == ADMIT

    def test_cooperative_gate_still_sheds_when_scaleups_cannot_catch_up(self):
        probe = StubProbe(backlog_drain=30.0, projected_drain=25.0)
        assert self.make_gate(True, probe).decide(0.0, "agent") == REJECT

    def test_cooperative_gate_unsheds_as_replicas_land(self):
        probe = StubProbe(backlog_drain=30.0, projected_drain=25.0)
        gate = self.make_gate(True, probe)
        assert gate.decide(0.0, "agent") == REJECT
        assert gate.shed_active
        # Warm replicas landed: the horizon projection clears the exit
        # threshold (10 * 0.8) and the gate reopens.
        probe.projected_drain = 4.0
        assert gate.decide(1.0, "agent") == ADMIT
        assert not gate.shed_active
        assert [active for _, active in gate.transitions] == [True, False]

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError, match="horizon_s"):
            SloShedAdmission(slo_p95_s=10.0, horizon_s=0.0)


# ---------------------------------------------------------------------------
# Spec vocabulary
# ---------------------------------------------------------------------------


class TestPredictiveSpecs:
    def test_autoscaler_mode_and_forecaster_validated(self):
        with pytest.raises(ValueError, match="unknown autoscaler mode"):
            AutoscalerSpec(mode="proactive")
        with pytest.raises(ValueError, match="unknown arrival forecaster"):
            AutoscalerSpec(mode="predictive", forecaster="arima")
        with pytest.raises(ValueError, match="horizon_s"):
            AutoscalerSpec(mode="predictive", horizon_s=0.0)
        with pytest.raises(ValueError, match="alpha/beta"):
            AutoscalerSpec(forecaster_alpha=0.0)

    def test_cooperative_requires_slo_shed(self):
        with pytest.raises(ValueError, match="cooperative"):
            AdmissionSpec(policy="token-bucket", rate_qps=1.0, cooperative=True)

    def test_cooperative_requires_an_autoscaler(self):
        with pytest.raises(ValueError, match="requires an autoscaler"):
            predictive_spec(
                autoscaler=None,
                admission=AdmissionSpec(
                    policy="slo-shed", slo_p95_s=10.0, cooperative=True
                ),
            )

    def test_predictive_spec_round_trips_through_dict(self):
        spec = predictive_spec(
            admission=AdmissionSpec(
                per_class=(
                    (
                        "agent",
                        AdmissionSpec(
                            policy="slo-shed", protect_class="chat", cooperative=True
                        ),
                    ),
                )
            )
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec


# ---------------------------------------------------------------------------
# End-to-end behaviour and the reactive golden pin
# ---------------------------------------------------------------------------


class TestPredictiveServing:
    def test_forecaster_sees_only_the_autoscaled_pools_arrivals(self):
        # A predictive autoscaler watching one pool of a two-pool fleet must
        # not size that pool from the fleet-wide arrival rate: only arrivals
        # classified to its pool count as its demand.
        from repro.api import PoolSpec
        from repro.api.builder import SystemBuilder
        from repro.api.runners import ServingDriver, _build_plan

        spec = predictive_spec(
            pools=(
                PoolSpec(name="chat", replicas=2, traffic_classes=("chat",)),
                PoolSpec(name="agent", replicas=2, traffic_classes=("agent",)),
            ),
            autoscaler=AutoscalerSpec(
                pool="agent",
                mode="predictive",
                forecaster="windowed-rate",
                min_replicas=2,
                max_replicas=4,
            ),
        )
        system = SystemBuilder(spec).build()
        driver = ServingDriver(system)
        plan = _build_plan(system)
        driver.serve(plan)
        observed = len(system.autoscaler.forecaster.arrivals)
        agent_arrivals = sum(1 for label in plan.labels() if label == "agent")
        assert observed == agent_arrivals
        assert observed < len(plan)

    def test_predictive_run_is_deterministic_and_reports_telemetry(self):
        first = run_experiment(predictive_spec())
        second = run_experiment(predictive_spec())
        assert first.latencies == second.latencies
        assert [e.time for e in first.serving.scaling_events] == [
            e.time for e in second.serving.scaling_events
        ]
        assert first.forecast_mae is not None
        summary = first.summary()
        assert summary["forecast_mae"] == first.forecast_mae

    def test_reactive_runs_reproduce_pr3_numbers(self):
        # Golden pin generated from the pre-forecasting tree (PR-3): the
        # reactive controller and its serving pipeline must not shift by a
        # single event when the predictive machinery is idle.
        spec = ExperimentSpec(
            workloads=(
                WeightedWorkload(
                    agent="chatbot", workload="sharegpt", weight=0.6, name="chat"
                ),
                WeightedWorkload(
                    agent="react", workload="hotpotqa", weight=0.4, name="agent"
                ),
            ),
            autoscaler=AutoscalerSpec(
                min_replicas=1,
                max_replicas=3,
                check_interval_s=1.0,
                warmup_s=2.0,
                scale_up_pending_per_replica=1.5,
                scale_down_pending_per_replica=0.25,
            ),
            arrival=ArrivalSpec(
                process="poisson", qps=3.0, num_requests=12, task_pool_size=8
            ),
            max_decode_chunk=8,
            seed=7,
        )
        outcome = run_experiment(spec)
        assert outcome.latencies == [
            2.6941078043121167,
            7.550351017798753,
            5.84351769049711,
            6.2152313936974135,
            7.300760703507089,
            8.956348470123501,
            9.630460732567077,
            17.49887780530729,
            17.166760066377762,
            21.05311449817187,
            21.46772476611589,
            27.016158061140302,
        ]
        assert [
            (event.time, event.action) for event in outcome.serving.scaling_events
        ] == [(2.0, "grow"), (3.0, "grow"), (22.0, "shrink"), (25.0, "shrink")]
        assert outcome.replica_seconds == pytest.approx(73.5572885685319, abs=1e-9)
        # The idle predictive surface stays dark on reactive runs.
        assert outcome.forecast_mae is None
        assert outcome.scale_ahead_lead_s is None
