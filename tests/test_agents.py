"""Tests for the agent workflows (CoT, ReAct, Reflexion, LATS, LLMCompiler, chatbot)."""

from __future__ import annotations

import pytest

from repro.agents import (
    AgentConfig,
    PAPER_AGENTS,
    available_agents,
    create_agent,
    get_agent_class,
)
from repro.llm import EngineConfig, LLMClient, LLMEngine
from repro.llm.models import get_model
from repro.llm.tokenizer import SegmentKind
from repro.sim import Environment, RandomStream
from repro.workloads import create_workload


def run_agent(agent_name, benchmark, config=None, seed=3, task_index=0, model="8b"):
    """Build a fresh stack and run one request; returns (result, engine)."""
    env = Environment()
    engine = LLMEngine(env, EngineConfig(model=get_model(model)))
    client = LLMClient(env, engine)
    workload = create_workload(benchmark, seed=seed)
    needs_tools = agent_name not in ("cot", "chatbot")
    toolset = workload.build_toolset(env, client.tokenizer, client) if needs_tools else None
    agent = create_agent(
        agent_name,
        env=env,
        client=client,
        workload=workload,
        toolset=toolset,
        config=config or AgentConfig(),
        seed_stream=RandomStream(seed, f"test/{agent_name}"),
    )
    task = workload.sample_tasks(task_index + 1)[task_index]
    result = env.run(agent.run_process(task))
    return result, engine


class TestAgentConfig:
    def test_defaults_are_valid(self):
        config = AgentConfig()
        assert config.max_iterations >= 1
        assert config.num_few_shot >= 0

    @pytest.mark.parametrize(
        "field", ["max_iterations", "max_trials", "num_children", "max_expansions"]
    )
    def test_non_positive_values_rejected(self, field):
        with pytest.raises(ValueError):
            AgentConfig(**{field: 0})

    def test_negative_few_shot_rejected(self):
        with pytest.raises(ValueError):
            AgentConfig(num_few_shot=-1)

    def test_with_overrides_returns_new_config(self):
        config = AgentConfig()
        updated = config.with_overrides(max_iterations=20)
        assert updated.max_iterations == 20
        assert config.max_iterations != 20

    def test_describe_mentions_key_fields(self):
        assert "fewshot=2" in AgentConfig().describe()


class TestRegistry:
    def test_paper_agents_all_registered(self):
        for name in PAPER_AGENTS:
            assert name in available_agents()

    def test_unknown_agent_raises(self):
        with pytest.raises(KeyError):
            get_agent_class("autogpt")

    def test_capabilities_match_table1(self):
        rows = {name: get_agent_class(name).capabilities for name in PAPER_AGENTS}
        assert not rows["cot"].tool_use
        assert rows["react"].tool_use and not rows["react"].reflection
        assert rows["reflexion"].reflection and not rows["reflexion"].tree_search
        assert rows["lats"].tree_search and rows["lats"].reflection
        assert rows["llmcompiler"].structured_planning and not rows["llmcompiler"].reflection

    def test_agent_requiring_tools_rejects_missing_toolset(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig())
        client = LLMClient(env, engine)
        workload = create_workload("hotpotqa")
        with pytest.raises(ValueError):
            create_agent("react", env=env, client=client, workload=workload, toolset=None)

    def test_unsupported_benchmark_rejected(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig())
        client = LLMClient(env, engine)
        workload = create_workload("webshop")
        with pytest.raises(ValueError):
            create_agent("cot", env=env, client=client, workload=workload, toolset=None)


class TestCoT:
    def test_single_llm_call_no_tools(self):
        result, _ = run_agent("cot", "hotpotqa")
        assert result.num_llm_calls == 1
        assert result.num_tool_calls == 0
        assert result.e2e_latency > 0

    def test_prompt_contains_instruction_fewshot_user(self):
        result, _ = run_agent("cot", "hotpotqa", config=AgentConfig(num_few_shot=3))
        kinds = result.llm_calls[0].prompt_tokens_by_kind
        assert kinds[SegmentKind.INSTRUCTION] > 0
        assert kinds[SegmentKind.FEW_SHOT] > 0
        assert kinds[SegmentKind.USER] > 0


class TestReAct:
    def test_interleaves_llm_and_tool_calls(self):
        result, _ = run_agent("react", "hotpotqa")
        assert result.num_llm_calls >= 2
        assert result.num_tool_calls >= 1
        assert result.num_llm_calls == result.num_tool_calls + 1

    def test_respects_iteration_budget(self):
        config = AgentConfig(max_iterations=3)
        result, _ = run_agent("react", "hotpotqa", config=config)
        assert result.num_tool_calls <= 3
        assert result.num_llm_calls <= 4

    def test_history_accumulates_in_prompt(self):
        result, _ = run_agent("react", "hotpotqa")
        first_call = result.llm_calls[0]
        last_call = result.llm_calls[-1]
        assert last_call.prompt_tokens > first_call.prompt_tokens
        assert last_call.prompt_tokens_by_kind.get(SegmentKind.TOOL_HISTORY, 0) > 0

    def test_tool_intervals_do_not_overlap_llm_calls(self):
        result, _ = run_agent("react", "hotpotqa")
        from repro.core import LatencyBreakdown

        breakdown = LatencyBreakdown.from_result(result)
        assert breakdown.overlap_time < 0.05 * breakdown.total + 1e-6

    def test_larger_iteration_budget_never_reduces_call_count(self):
        small, _ = run_agent("react", "webshop", config=AgentConfig(max_iterations=3))
        large, _ = run_agent("react", "webshop", config=AgentConfig(max_iterations=20))
        assert large.num_llm_calls >= small.num_llm_calls


class TestReflexion:
    def test_runs_multiple_trials_when_allowed(self):
        config = AgentConfig(max_iterations=5, max_trials=4)
        result, _ = run_agent("reflexion", "hotpotqa", config=config, task_index=1)
        assert 1 <= result.trials <= 4

    def test_single_trial_config_behaves_like_react(self):
        config = AgentConfig(max_iterations=5, max_trials=1)
        result, _ = run_agent("reflexion", "hotpotqa", config=config)
        assert result.trials == 1

    def test_more_trials_mean_more_llm_calls_on_hard_tasks(self):
        few = AgentConfig(max_iterations=5, max_trials=1)
        many = AgentConfig(max_iterations=5, max_trials=8)
        totals_few, totals_many = 0, 0
        for index in range(4):
            few_result, _ = run_agent("reflexion", "hotpotqa", config=few, task_index=index)
            many_result, _ = run_agent("reflexion", "hotpotqa", config=many, task_index=index)
            totals_few += few_result.num_llm_calls
            totals_many += many_result.num_llm_calls
        assert totals_many > totals_few


class TestLATS:
    def test_issues_parallel_children_per_expansion(self):
        config = AgentConfig(num_children=4, max_expansions=6)
        result, engine = run_agent("lats", "hotpotqa", config=config)
        expansions = result.metadata["expansions"]
        # children + evaluation call per expansion, plus the final answer call.
        assert result.num_llm_calls == expansions * 5 + 1
        assert result.num_tool_calls == expansions * 4
        max_batch = max(
            record.batch_size for record in engine.step_records if record.kind == "decode"
        )
        assert max_batch >= 2  # children were actually decoded concurrently

    def test_respects_expansion_budget(self):
        config = AgentConfig(num_children=2, max_expansions=3)
        result, _ = run_agent("lats", "hotpotqa", config=config)
        assert result.metadata["expansions"] <= 3

    def test_more_children_reduce_expansions_on_average(self):
        def mean_expansions(children):
            total = 0
            for index in range(5):
                config = AgentConfig(num_children=children, max_expansions=16)
                result, _ = run_agent("lats", "hotpotqa", config=config, task_index=index)
                total += result.metadata["expansions"]
            return total / 5

        assert mean_expansions(8) <= mean_expansions(1)

    def test_makes_many_more_llm_calls_than_react(self):
        react, _ = run_agent("react", "hotpotqa")
        lats, _ = run_agent("lats", "hotpotqa", config=AgentConfig(num_children=5, max_expansions=12))
        assert lats.num_llm_calls > 3 * react.num_llm_calls


class TestLLMCompiler:
    def test_fewer_llm_calls_than_react_on_average(self):
        compiler_calls, react_calls = 0, 0
        for index in range(5):
            compiler, _ = run_agent("llmcompiler", "hotpotqa", task_index=index)
            react, _ = run_agent("react", "hotpotqa", task_index=index)
            compiler_calls += compiler.num_llm_calls
            react_calls += react.num_llm_calls
        assert compiler_calls <= react_calls

    def test_produces_overlap_between_planning_and_tools(self):
        from repro.core import LatencyBreakdown

        overlaps = []
        for index in range(4):
            result, _ = run_agent("llmcompiler", "hotpotqa", task_index=index)
            overlaps.append(LatencyBreakdown.from_result(result).overlap_time)
        assert max(overlaps) > 0

    def test_webshop_overfetches_tool_calls(self):
        compiler, _ = run_agent("llmcompiler", "webshop")
        react, _ = run_agent("react", "webshop")
        assert compiler.num_tool_calls >= 4
        assert compiler.num_llm_calls < react.num_llm_calls


class TestChatbot:
    def test_single_call_and_always_successful(self):
        result, _ = run_agent("chatbot", "sharegpt")
        assert result.num_llm_calls == 1
        assert result.num_tool_calls == 0
        assert result.answer_correct
        assert result.score == 1.0

    def test_output_length_comes_from_task_metadata(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig())
        client = LLMClient(env, engine)
        workload = create_workload("sharegpt", seed=3)
        agent = create_agent("chatbot", env=env, client=client, workload=workload)
        task = workload.sample_tasks(1)[0]
        result = env.run(agent.run_process(task))
        assert result.llm_calls[0].output_tokens == task.metadata["output_tokens"]


class TestTraceConsistency:
    @pytest.mark.parametrize("agent_name", ["cot", "react", "reflexion", "lats", "llmcompiler"])
    def test_trace_intervals_lie_within_request_window(self, agent_name):
        result, _ = run_agent(agent_name, "hotpotqa", config=AgentConfig(max_expansions=4))
        for start, end in result.llm_intervals() + result.tool_intervals():
            assert result.start_time - 1e-9 <= start <= end <= result.end_time + 1e-9

    @pytest.mark.parametrize("agent_name", ["react", "reflexion", "llmcompiler"])
    def test_latency_equals_window(self, agent_name):
        result, _ = run_agent(agent_name, "hotpotqa")
        assert result.e2e_latency == pytest.approx(result.end_time - result.start_time)

    def test_deterministic_given_seed(self):
        a, _ = run_agent("react", "hotpotqa", seed=11)
        b, _ = run_agent("react", "hotpotqa", seed=11)
        assert a.num_llm_calls == b.num_llm_calls
        assert a.e2e_latency == pytest.approx(b.e2e_latency)
        assert a.answer_correct == b.answer_correct

    def test_total_tokens_positive_and_consistent(self):
        result, _ = run_agent("react", "math")
        assert result.total_tokens == result.total_prompt_tokens + result.total_output_tokens
        assert result.total_prompt_tokens > 0
