"""Tests for multi-turn sessions: specs, sticky routing, driver lifecycle."""

from __future__ import annotations

import pytest

from repro.api import ArrivalSpec, ExperimentSpec, SessionSpec, run_experiment
from repro.llm import EngineConfig, Prompt, SamplingParams
from repro.llm.kvcache import KVCacheConfig
from repro.llm.request import LLMRequest
from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer
from repro.serving import Cluster
from repro.sim import Environment

TOKENIZER = SyntheticTokenizer()


def make_request(session: str | None = None, stream: str = "req") -> LLMRequest:
    prompt = Prompt()
    prompt.append(TOKENIZER.span(SegmentKind.USER, stream, 64))
    return LLMRequest(
        prompt=prompt,
        sampling=SamplingParams(output_tokens=8),
        metadata={"session": session} if session else None,
    )


def session_spec(**overrides) -> ExperimentSpec:
    options = dict(
        agent="chatbot",
        workload="sharegpt",
        replicas=2,
        router="session-affinity",
        max_decode_chunk=8,
        arrival=ArrivalSpec(
            process="poisson",
            qps=2.0,
            num_requests=4,
            task_pool_size=4,
            sessions=SessionSpec(turns=3, followup_tokens=32, think_time_s=1.0),
        ),
    )
    options.update(overrides)
    return ExperimentSpec(**options)


# ---------------------------------------------------------------------------
# SessionSpec validation and plumbing
# ---------------------------------------------------------------------------


class TestSessionSpec:
    def test_defaults_round_trip(self):
        spec = SessionSpec(turns=4, followup_tokens=64, think_time_s=5.0)
        assert SessionSpec.from_dict(
            {"turns": 4, "followup_tokens": 64, "think_time_s": 5.0}
        ) == spec

    def test_invalid_turns_rejected(self):
        with pytest.raises(ValueError, match="turns"):
            SessionSpec(turns=0)

    def test_invalid_think_time_distribution_rejected(self):
        with pytest.raises(ValueError, match="think_time"):
            SessionSpec(think_time="lognormal")

    def test_negative_think_time_rejected(self):
        with pytest.raises(ValueError, match="think_time_s"):
            SessionSpec(think_time_s=-1.0)

    def test_arrival_spec_coerces_dict(self):
        arrival = ArrivalSpec(
            process="poisson",
            qps=1.0,
            num_requests=2,
            sessions={"turns": 2, "followup_tokens": 16},
        )
        assert isinstance(arrival.sessions, SessionSpec)
        assert arrival.sessions.turns == 2

    def test_sessions_need_open_loop_arrivals(self):
        with pytest.raises(ValueError, match="open-loop"):
            ArrivalSpec(process="single", num_requests=2, sessions=SessionSpec())

    def test_arrival_from_dict_decodes_sessions(self):
        arrival = ArrivalSpec.from_dict(
            {
                "process": "poisson",
                "qps": 1.0,
                "num_requests": 2,
                "sessions": {"turns": 5},
            }
        )
        assert arrival.sessions == SessionSpec(turns=5)

    def test_study_axis_value_round_trips(self):
        from repro.api.study import _decode_value, _encode_value

        spec = SessionSpec(turns=6, followup_tokens=48, think_time_s=2.0)
        assert _decode_value(_encode_value(spec)) == spec


# ---------------------------------------------------------------------------
# KV-capacity knob
# ---------------------------------------------------------------------------


class TestKvCacheFraction:
    def test_fraction_scales_num_blocks(self):
        config = EngineConfig()
        full = KVCacheConfig.from_hardware(config.model, config.resolved_cluster())
        half = KVCacheConfig.from_hardware(
            config.model, config.resolved_cluster(), capacity_fraction=0.5
        )
        assert half.num_blocks == max(1, int(full.num_blocks * 0.5))

    def test_invalid_fraction_rejected(self):
        config = EngineConfig()
        with pytest.raises(ValueError, match="capacity_fraction"):
            KVCacheConfig.from_hardware(
                config.model, config.resolved_cluster(), capacity_fraction=1.5
            )

    def test_spec_validates_fraction(self):
        with pytest.raises(ValueError, match="kv_cache_fraction"):
            ExperimentSpec(agent="chatbot", workload="sharegpt", kv_cache_fraction=0.0)


# ---------------------------------------------------------------------------
# Session-affinity router
# ---------------------------------------------------------------------------


class TestSessionAffinityRouter:
    def _cluster(self, num_replicas: int = 4) -> Cluster:
        return Cluster(
            Environment(),
            EngineConfig(),
            num_replicas=num_replicas,
            router="session-affinity",
        )

    def test_untagged_requests_fall_back_to_least_loaded(self):
        cluster = self._cluster()
        for index in (0, 0, 1, 2):
            cluster.replicas[index].submit(make_request(stream=f"load{index}"))
        assert cluster.router.select(make_request(), cluster.replicas) == 3

    def test_session_sticks_to_its_home(self):
        cluster = self._cluster()
        home = cluster.router.select(make_request(session="s0"), cluster.replicas)
        # Mild load elsewhere must not move the session off its home.
        other = (home + 1) % len(cluster.replicas)
        cluster.replicas[home].submit(make_request(stream="busy"))
        assert other != home
        assert cluster.router.select(make_request(session="s0"), cluster.replicas) == home
        assert cluster.router.invalidations == 0

    def test_spill_invalidates_affinity(self):
        cluster = self._cluster()
        home = cluster.router.select(make_request(session="s0"), cluster.replicas)
        for n in range(cluster.router.spill_threshold + 1):
            cluster.replicas[home].submit(make_request(stream=f"fill{n}"))
        moved = cluster.router.select(make_request(session="s0"), cluster.replicas)
        assert moved != home
        assert cluster.router.invalidations == 1
        # The spill re-pins: the session's new home is the spill target.
        assert cluster.router.select(make_request(session="s0"), cluster.replicas) == moved

    def test_replica_shrink_invalidates_and_re_pins(self):
        cluster = self._cluster()
        replicas = list(cluster.replicas)
        home = cluster.router.select(make_request(session="s0"), replicas)
        # The home replica leaves the active set (autoscaler shrink).
        survivors = [engine for i, engine in enumerate(replicas) if i != home]
        re_pinned = cluster.router.select(make_request(session="s0"), survivors)
        assert cluster.router.invalidations == 1
        new_home = survivors[re_pinned]
        # Subsequent turns stick to the new home, no further invalidation.
        assert survivors[
            cluster.router.select(make_request(session="s0"), survivors)
        ] is new_home
        assert cluster.router.invalidations == 1


# ---------------------------------------------------------------------------
# Serving driver lifecycle
# ---------------------------------------------------------------------------


class TestSessionServing:
    def test_turn_and_session_accounting(self):
        outcome = run_experiment(session_spec())
        stats = outcome.session_stats
        assert stats is not None
        assert stats.num_sessions == 4
        assert stats.completed_sessions == 4
        assert stats.total_turns == 12
        assert outcome.num_completed == 12
        assert stats.mean_turns_per_session == 3.0
        assert 0.0 < stats.cross_turn_hit_rate <= 1.0

    def test_prompts_grow_across_turns(self):
        outcome = run_experiment(session_spec())
        by_session: dict = {}
        for result in outcome.serving.results:
            by_session.setdefault(result.metadata["session"], []).append(result)
        assert len(by_session) == 4
        for turns in by_session.values():
            turns.sort(key=lambda result: result.metadata["session_turn"])
            prompt_sizes = [result.total_prompt_tokens for result in turns]
            assert prompt_sizes == sorted(prompt_sizes)
            assert prompt_sizes[-1] > prompt_sizes[0]

    def test_cross_turn_reuse_is_high_with_sticky_routing(self):
        outcome = run_experiment(session_spec())
        assert outcome.cross_turn_hit_rate > 0.8

    def test_sessionless_runs_report_no_session_stats(self):
        spec = session_spec(
            router="least-loaded",
            arrival=ArrivalSpec(
                process="poisson", qps=2.0, num_requests=4, task_pool_size=4
            ),
        )
        outcome = run_experiment(spec)
        assert outcome.session_stats is None
        assert outcome.cross_turn_hit_rate is None
        assert "num_sessions" not in outcome.summary()

    def test_session_runs_are_deterministic(self):
        first = run_experiment(session_spec()).summary()
        second = run_experiment(session_spec()).summary()
        assert first == second

    def test_admission_counts_sessions_not_turns(self):
        # A concurrency-1 door admits one *interaction* at a time; later
        # turns of an admitted session never re-enter the door, so the
        # offered count equals the arrival plan, not the turn count.
        outcome = run_experiment(session_spec(max_concurrency=1))
        stats = outcome.session_stats
        assert stats.completed_sessions == 4
        assert outcome.num_completed == 12
        offered = sum(s.offered for s in outcome.serving.admission_stats.values())
        assert offered == 4
        assert outcome.num_rejected == 0

    def test_oit_throttle_never_severs_mid_session(self):
        from repro.api import AdmissionSpec

        outcome = run_experiment(
            session_spec(admission=AdmissionSpec(policy="oit-throttle"))
        )
        stats = outcome.session_stats
        # Every *admitted* session runs to its final turn: rejection can only
        # happen at the first turn, so started == completed always.
        assert stats.completed_sessions == stats.num_sessions

    def test_hit_accounting_survives_preemption(self):
        outcome = run_experiment(
            session_spec(
                kv_cache_fraction=0.01,
                arrival=ArrivalSpec(
                    process="poisson",
                    qps=4.0,
                    num_requests=6,
                    task_pool_size=2,
                    sessions=SessionSpec(turns=3, followup_tokens=32, think_time_s=0.5),
                ),
            )
        )
        stats = outcome.session_stats
        # The squeezed cache genuinely preempts, evicting warm prefixes.
        assert outcome.serving.preemptions > 0
        assert stats.completed_sessions == 6
        assert 0 <= stats.cross_turn_cached_tokens <= stats.cross_turn_prompt_tokens
        assert 0.0 <= stats.cross_turn_hit_rate <= 1.0
        # Eviction costs reuse: the hit rate sits below the ample-capacity run.
        ample = run_experiment(
            session_spec(
                arrival=ArrivalSpec(
                    process="poisson",
                    qps=4.0,
                    num_requests=6,
                    task_pool_size=2,
                    sessions=SessionSpec(turns=3, followup_tokens=32, think_time_s=0.5),
                ),
            )
        )
        assert stats.cross_turn_hit_rate < ample.cross_turn_hit_rate

    def test_constant_think_time_draws_nothing(self):
        spec = session_spec(
            arrival=ArrivalSpec(
                process="poisson",
                qps=2.0,
                num_requests=2,
                task_pool_size=2,
                sessions=SessionSpec(turns=2, think_time_s=3.0, think_time="constant"),
            )
        )
        outcome = run_experiment(spec)
        assert outcome.session_stats.completed_sessions == 2

    def test_per_class_sessions_override_arrival(self):
        from repro.api import WeightedWorkload

        spec = ExperimentSpec(
            workloads=(
                WeightedWorkload(
                    agent="chatbot",
                    workload="sharegpt",
                    weight=1.0,
                    name="chat",
                    sessions=SessionSpec(turns=2, think_time_s=0.5),
                ),
                WeightedWorkload(
                    agent="chatbot", workload="sharegpt", weight=1.0, name="batch"
                ),
            ),
            replicas=2,
            router="session-affinity",
            max_decode_chunk=8,
            arrival=ArrivalSpec(
                process="poisson", qps=2.0, num_requests=6, task_pool_size=4
            ),
        )
        outcome = run_experiment(spec)
        stats = outcome.session_stats
        # Only chat-class arrivals open sessions; batch stays single-shot.
        chat = sum(
            1
            for result in outcome.serving.results
            if result.metadata.get("traffic_class") == "chat"
            and result.metadata.get("session_turn") == 1
        )
        assert stats.num_sessions == chat
        assert stats.completed_sessions == stats.num_sessions
        batch = [
            result
            for result in outcome.serving.results
            if result.metadata.get("traffic_class") == "batch"
        ]
        assert batch and all("session" not in result.metadata for result in batch)
