"""Tests for the declarative experiment spec: validation and round-trips."""

from __future__ import annotations

import pytest

from repro.agents import AgentConfig
from repro.api import ArrivalSpec, ExperimentSpec, MeasurementSpec, SystemBuilder


class TestExperimentSpecValidation:
    def test_defaults_are_valid(self):
        spec = ExperimentSpec()
        assert spec.replicas == 1
        assert spec.scheduler == "fcfs"
        assert spec.router == "round-robin"
        assert spec.arrival.process == "single"

    def test_unknown_agent_rejected(self):
        with pytest.raises(ValueError, match="unknown agent"):
            ExperimentSpec(agent="daydreamer")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            ExperimentSpec(workload="gsm8k")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            ExperimentSpec(model="405b")

    def test_unknown_scheduler_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler policy"):
            ExperimentSpec(scheduler="lifo")

    def test_unknown_router_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown router policy"):
            ExperimentSpec(router="random-spray")

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError, match="replicas"):
            ExperimentSpec(replicas=0)

    def test_max_concurrency_must_be_positive_or_none(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            ExperimentSpec(max_concurrency=0)
        assert ExperimentSpec(max_concurrency=None).max_concurrency is None

    def test_known_scheduler_policies_accepted(self):
        for policy in ("fcfs", "priority", "sjf-by-predicted-decode"):
            assert ExperimentSpec(scheduler=policy).scheduler == policy

    def test_known_router_policies_accepted(self):
        for router in ("round-robin", "least-loaded", "prefix-affinity"):
            assert ExperimentSpec(router=router).router == router


class TestArrivalSpecValidation:
    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            ArrivalSpec(process="burst")

    def test_open_loop_requires_qps(self):
        with pytest.raises(ValueError, match="qps"):
            ArrivalSpec(process="poisson")
        with pytest.raises(ValueError, match="qps"):
            ArrivalSpec(process="uniform", qps=0.0)

    def test_closed_loop_rejects_qps(self):
        with pytest.raises(ValueError, match="do not take a qps"):
            ArrivalSpec(process="single", qps=2.0)

    def test_num_requests_positive(self):
        with pytest.raises(ValueError, match="num_requests"):
            ArrivalSpec(num_requests=0)

    def test_measurement_warmup_non_negative(self):
        with pytest.raises(ValueError, match="warmup_requests"):
            MeasurementSpec(warmup_requests=-1)

    def test_shape_requires_open_loop_process(self):
        from repro.serving.shapes import RampShape

        with pytest.raises(ValueError, match="rate shape"):
            ArrivalSpec(process="single", shape=RampShape())
        with pytest.raises(ValueError, match="rate shape"):
            ArrivalSpec(process="sequential", shape="diurnal")

    def test_shape_shorthands_coerce(self):
        from repro.serving.shapes import DiurnalShape, RampShape

        named = ArrivalSpec(process="poisson", qps=1.0, shape="diurnal")
        assert isinstance(named.shape, DiurnalShape)
        from_dict = ArrivalSpec(
            process="poisson", qps=1.0, shape=RampShape().to_dict()
        )
        assert from_dict.shape == RampShape()
        with pytest.raises(ValueError, match="unknown rate shape"):
            ArrivalSpec(process="poisson", qps=1.0, shape="sawtooth")
        with pytest.raises(ValueError, match="RateShape"):
            ArrivalSpec(process="poisson", qps=1.0, shape=3.0)

    def test_duration_requires_open_loop_and_positive(self):
        assert ArrivalSpec(process="poisson", qps=1.0, duration_s=30.0).duration_s == 30.0
        with pytest.raises(ValueError, match="duration_s"):
            ArrivalSpec(process="single", duration_s=10.0)
        with pytest.raises(ValueError, match="duration_s"):
            ArrivalSpec(process="poisson", qps=1.0, duration_s=0.0)

    def test_workload_shape_coerces_and_validates(self):
        from repro.api import WeightedWorkload
        from repro.serving.shapes import SquareWaveShape

        mix = WeightedWorkload(
            agent="chatbot", workload="sharegpt", name="chat", shape="square-wave"
        )
        assert isinstance(mix.shape, SquareWaveShape)
        with pytest.raises(ValueError, match="shape"):
            WeightedWorkload(agent="chatbot", workload="sharegpt", shape=1.0)

    def test_warmup_must_leave_a_measured_window(self):
        with pytest.raises(ValueError, match="warmup_requests must be smaller"):
            ExperimentSpec(
                arrival=ArrivalSpec(process="poisson", qps=1.0, num_requests=3),
                measurement=MeasurementSpec(warmup_requests=3),
            )


class TestSpecRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = ExperimentSpec(
            agent="lats",
            workload="math",
            model="70b",
            replicas=3,
            scheduler="sjf-by-predicted-decode",
            router="prefix-affinity",
            enable_prefix_caching=False,
            agent_config=AgentConfig(max_iterations=4, num_children=2),
            arrival=ArrivalSpec(process="poisson", qps=1.5, num_requests=9, task_pool_size=5),
            measurement=MeasurementSpec(warmup_requests=2),
            seed=7,
            max_decode_chunk=8,
            max_concurrency=12,
        )
        payload = spec.to_dict()
        assert payload["arrival"]["qps"] == 1.5
        assert payload["agent_config"]["num_children"] == 2
        assert ExperimentSpec.from_dict(payload) == spec

    def test_round_trip_survives_json(self):
        import json

        spec = ExperimentSpec(arrival=ArrivalSpec(process="uniform", qps=2.0, num_requests=4))
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_shaped_spec_round_trip_survives_json(self):
        import json

        from repro.api import WeightedWorkload
        from repro.serving.shapes import (
            ConstantShape,
            PiecewiseShape,
            SquareWaveShape,
        )

        program = PiecewiseShape(
            segments=(
                (20.0, ConstantShape(level_value=0.5)),
                (20.0, SquareWaveShape()),
            )
        )
        spec = ExperimentSpec(
            workloads=(
                WeightedWorkload(agent="chatbot", workload="sharegpt", name="chat"),
                WeightedWorkload(
                    agent="react", workload="hotpotqa", name="agent",
                    shape=SquareWaveShape(burst_level=3.0),
                ),
            ),
            arrival=ArrivalSpec(
                process="poisson", qps=2.0, num_requests=12, shape=program,
                duration_s=60.0,
            ),
        )
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.arrival.shape == program

    def test_from_dict_validates(self):
        payload = ExperimentSpec().to_dict()
        payload["scheduler"] = "not-a-policy"
        with pytest.raises(ValueError, match="unknown scheduler policy"):
            ExperimentSpec.from_dict(payload)

    def test_with_overrides_revalidates(self):
        spec = ExperimentSpec()
        with pytest.raises(ValueError):
            spec.with_overrides(router="nope")
        assert spec.with_overrides(replicas=4).replicas == 4

    def test_at_qps_switches_to_poisson(self):
        spec = ExperimentSpec(arrival=ArrivalSpec(process="single", num_requests=5))
        poisson = spec.at_qps(2.5)
        assert poisson.arrival.process == "poisson"
        assert poisson.arrival.qps == 2.5
        assert poisson.arrival.num_requests == 5


class TestSystemBuilder:
    def test_builder_assembles_requested_shape(self):
        spec = ExperimentSpec(
            replicas=3,
            scheduler="priority",
            router="least-loaded",
            arrival=ArrivalSpec(process="poisson", qps=1.0, num_requests=4),
        )
        system = SystemBuilder(spec).build()
        assert system.cluster.num_replicas == 3
        assert system.cluster.router.name == "least-loaded"
        for engine in system.cluster.replicas:
            assert engine.scheduler.policy.name == "priority"
        assert system.client.engine is system.cluster

    def test_stream_namespace_matches_legacy(self):
        single = ExperimentSpec(arrival=ArrivalSpec(process="single"))
        serving = ExperimentSpec(arrival=ArrivalSpec(process="poisson", qps=1.0))
        assert SystemBuilder(single).stream_name() == "runner/react/hotpotqa"
        assert SystemBuilder(serving).stream_name() == "serving/react/hotpotqa"
