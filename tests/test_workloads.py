"""Tests for the benchmark workloads and their action policies."""

from __future__ import annotations

import pytest

from repro.llm.tokenizer import SyntheticTokenizer
from repro.sim import Environment, RandomStream
from repro.tools.calculator import evaluate_expression
from repro.workloads import (
    AGENTIC_WORKLOADS,
    HotpotQAWorkload,
    HumanEvalWorkload,
    MathWorkload,
    ShareGPTWorkload,
    WebShopWorkload,
    available_workloads,
    create_workload,
)

TOKENIZER = SyntheticTokenizer()
ALL_WORKLOADS = ("hotpotqa", "webshop", "math", "humaneval", "sharegpt")


class TestRegistry:
    def test_all_paper_workloads_registered(self):
        registered = available_workloads()
        for name in ALL_WORKLOADS:
            assert name in registered

    def test_create_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            create_workload("gsm8k")

    def test_create_is_case_insensitive(self):
        assert create_workload("HotpotQA").name == "hotpotqa"

    def test_agentic_workloads_excludes_sharegpt(self):
        assert "sharegpt" not in AGENTIC_WORKLOADS
        assert len(AGENTIC_WORKLOADS) == 4


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestCommonWorkloadProperties:
    def test_tasks_have_valid_fields(self, name):
        workload = create_workload(name, seed=2)
        tasks = workload.sample_tasks(10)
        assert len(tasks) == 10
        for task in tasks:
            assert task.benchmark == name
            assert 0.0 <= task.difficulty <= 1.0
            assert task.solution_depth >= 1
            assert task.user_tokens > 0
            assert task.task_id

    def test_task_ids_are_unique(self, name):
        tasks = create_workload(name, seed=2).sample_tasks(20)
        assert len({task.task_id for task in tasks}) == 20

    def test_same_seed_same_tasks(self, name):
        a = create_workload(name, seed=7).sample_tasks(5)
        b = create_workload(name, seed=7).sample_tasks(5)
        assert [t.task_id for t in a] == [t.task_id for t in b]
        assert [t.difficulty for t in a] == [t.difficulty for t in b]

    def test_different_seeds_differ(self, name):
        a = create_workload(name, seed=1).sample_tasks(8)
        b = create_workload(name, seed=2).sample_tasks(8)
        assert [t.user_tokens for t in a] != [t.user_tokens for t in b]

    def test_info_matches_table2_contract(self, name):
        info = create_workload(name).info()
        assert info.name == name
        assert info.task_description
        assert info.agents


class TestAgentSupportMatrix:
    """The paper's agent/benchmark omissions (Section III)."""

    def test_cot_excluded_from_webshop(self):
        assert not create_workload("webshop").supports_agent("cot")

    def test_llmcompiler_excluded_from_math_and_humaneval(self):
        assert not create_workload("math").supports_agent("llmcompiler")
        assert not create_workload("humaneval").supports_agent("llmcompiler")

    def test_hotpotqa_supports_all_five_agents(self):
        workload = create_workload("hotpotqa")
        for agent in ("cot", "react", "reflexion", "lats", "llmcompiler"):
            assert workload.supports_agent(agent)

    def test_sharegpt_supports_only_chatbot(self):
        workload = create_workload("sharegpt")
        assert workload.supports_agent("chatbot")
        assert not workload.supports_agent("react")


class TestHotpotQA:
    def test_questions_follow_relation_chain(self):
        workload = HotpotQAWorkload(seed=4)
        for task in workload.sample_tasks(10):
            chain = task.metadata["chain"]
            assert len(chain) == task.solution_depth
            for title in chain:
                assert workload.corpus.get(title) is not None

    def test_gold_answer_is_derivable_from_corpus(self):
        workload = HotpotQAWorkload(seed=4)
        task = workload.sample_tasks(1)[0]
        work = workload.corpus.get(task.metadata["chain"][0])
        creator = workload.corpus.get(work.attributes["creator"])
        assert creator is not None

    def test_action_for_walks_the_chain(self):
        workload = HotpotQAWorkload(seed=4)
        task = workload.sample_tasks(1)[0]
        stream = RandomStream(1, "actions")
        first = workload.action_for(task, 0, stream)
        assert first.tool == "wikipedia"
        assert first.argument == task.metadata["chain"][0]

    def test_toolset_contains_wikipedia(self):
        env = Environment()
        workload = HotpotQAWorkload(seed=4)
        tools = workload.build_toolset(env, TOKENIZER)
        assert tools.names == ("wikipedia",)


class TestWebShopWorkload:
    def test_target_product_satisfies_requirements(self):
        workload = WebShopWorkload(seed=6)
        for task in workload.sample_tasks(10):
            target = workload.catalog.get(task.metadata["target"])
            assert target is not None
            assert target.matches(task.metadata["requirements"], task.metadata["max_price"])

    def test_action_sequence_ends_with_buy(self):
        workload = WebShopWorkload(seed=6)
        task = workload.sample_tasks(1)[0]
        stream = RandomStream(1, "actions")
        final = workload.action_for(task, task.solution_depth - 1, stream)
        assert final.action == "click"
        assert final.argument == "buy now"

    def test_first_action_is_search(self):
        workload = WebShopWorkload(seed=6)
        task = workload.sample_tasks(1)[0]
        action = workload.action_for(task, 0, RandomStream(1, "a"))
        assert action.action == "search"


class TestMathWorkload:
    def test_gold_answer_matches_final_expression(self):
        workload = MathWorkload(seed=8)
        for task in workload.sample_tasks(10):
            expressions = task.metadata["expressions"]
            assert task.gold_answer == pytest.approx(evaluate_expression(expressions[-1]))

    def test_solution_depth_matches_expression_count(self):
        workload = MathWorkload(seed=8)
        for task in workload.sample_tasks(10):
            assert task.solution_depth == len(task.metadata["expressions"])

    def test_toolset_has_wolfram_and_calculator(self):
        env = Environment()
        tools = MathWorkload(seed=8).build_toolset(env, TOKENIZER)
        assert set(tools.names) == {"wolfram", "calculator"}

    def test_action_uses_known_expression(self):
        workload = MathWorkload(seed=8)
        task = workload.sample_tasks(1)[0]
        action = workload.action_for(task, 0, RandomStream(2, "a"))
        assert action.tool in ("wolfram", "calculator")
        assert action.argument in task.metadata["expressions"]


class TestHumanEvalWorkload:
    def test_question_contains_function_signature(self):
        workload = HumanEvalWorkload(seed=9)
        for task in workload.sample_tasks(5):
            assert task.question.startswith("def ")
            assert task.metadata["function"] in task.question

    def test_action_runs_tests(self):
        workload = HumanEvalWorkload(seed=9)
        task = workload.sample_tasks(1)[0]
        action = workload.action_for(task, 0, RandomStream(2, "a"))
        assert action.tool == "python_exec"
        assert action.action == "run_tests"


class TestShareGPTWorkload:
    def test_tasks_carry_output_lengths(self):
        workload = ShareGPTWorkload(seed=10)
        tasks = workload.sample_tasks(50)
        lengths = [task.metadata["output_tokens"] for task in tasks]
        assert all(length >= 8 for length in lengths)
        assert 120 < sum(lengths) / len(lengths) < 450

    def test_no_tools_available(self):
        workload = ShareGPTWorkload(seed=10)
        with pytest.raises(NotImplementedError):
            workload.build_toolset(Environment(), TOKENIZER)
        with pytest.raises(NotImplementedError):
            workload.action_for(workload.sample_tasks(1)[0], 0, RandomStream(1, "a"))

    def test_prompt_lengths_are_heavy_tailed(self):
        workload = ShareGPTWorkload(seed=10)
        tasks = workload.sample_tasks(300)
        lengths = sorted(task.user_tokens for task in tasks)
        p50 = lengths[len(lengths) // 2]
        p95 = lengths[int(len(lengths) * 0.95)]
        assert p95 > 2 * p50
