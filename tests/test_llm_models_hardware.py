"""Tests for model specs, hardware specs, and the roofline performance model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import (
    A100_40GB,
    ClusterSpec,
    LLAMA_3_1_70B,
    LLAMA_3_1_8B,
    PerformanceModel,
    cluster_for_model,
    get_model,
)


class TestModelSpec:
    def test_get_model_by_short_name(self):
        assert get_model("8b") is LLAMA_3_1_8B
        assert get_model("70b") is LLAMA_3_1_70B

    def test_get_model_by_full_name(self):
        assert get_model("llama-3.1-8b-instruct") is LLAMA_3_1_8B

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("llama-13b")

    def test_weight_bytes_matches_params_and_dtype(self):
        assert LLAMA_3_1_8B.weight_bytes == pytest.approx(8.03e9 * 2)
        assert LLAMA_3_1_70B.weight_bytes == pytest.approx(70.6e9 * 2)

    def test_head_dim(self):
        assert LLAMA_3_1_8B.head_dim == 128
        assert LLAMA_3_1_70B.head_dim == 128

    def test_kv_bytes_per_token_8b(self):
        # 2 (K,V) * 32 layers * 8 kv heads * 128 dim * 2 bytes = 131072 B/token.
        assert LLAMA_3_1_8B.kv_bytes_per_token == pytest.approx(131072)

    def test_kv_bytes_per_token_70b_larger(self):
        assert LLAMA_3_1_70B.kv_bytes_per_token > LLAMA_3_1_8B.kv_bytes_per_token

    def test_flops_per_token_grows_with_context(self):
        short = LLAMA_3_1_8B.flops_per_token(0)
        long = LLAMA_3_1_8B.flops_per_token(4000)
        assert long > short
        assert short >= 2 * LLAMA_3_1_8B.n_params

    def test_prefill_flops_zero_tokens(self):
        assert LLAMA_3_1_8B.prefill_flops(0) == 0.0

    def test_prefill_flops_scale_superlinearly_with_length(self):
        flops_1k = LLAMA_3_1_8B.prefill_flops(1000)
        flops_2k = LLAMA_3_1_8B.prefill_flops(2000)
        assert flops_2k > 2 * flops_1k


class TestClusterSpec:
    def test_default_cluster_for_8b_is_single_gpu(self):
        cluster = cluster_for_model(LLAMA_3_1_8B)
        assert cluster.tensor_parallel == 1

    def test_default_cluster_for_70b_is_eight_gpus(self):
        cluster = cluster_for_model(LLAMA_3_1_70B)
        assert cluster.tensor_parallel == 8

    def test_70b_does_not_fit_one_gpu(self):
        cluster = ClusterSpec(gpu=A100_40GB, tensor_parallel=1)
        with pytest.raises(ValueError):
            cluster.kv_cache_bytes(LLAMA_3_1_70B)

    def test_kv_cache_bytes_positive_for_8b(self):
        cluster = cluster_for_model(LLAMA_3_1_8B)
        kv_bytes = cluster.kv_cache_bytes(LLAMA_3_1_8B)
        assert 0 < kv_bytes < A100_40GB.mem_capacity

    def test_power_states_ordering(self):
        cluster = cluster_for_model(LLAMA_3_1_8B)
        assert cluster.power_w("idle") < cluster.power_w("decode") < cluster.power_w("prefill")

    def test_unknown_power_state_raises(self):
        with pytest.raises(ValueError):
            cluster_for_model(LLAMA_3_1_8B).power_w("boost")

    def test_tensor_parallel_power_scales_with_gpus_but_sublinearly_per_gpu(self):
        single = ClusterSpec(gpu=A100_40GB, tensor_parallel=1)
        octo = ClusterSpec(gpu=A100_40GB, tensor_parallel=8)
        assert octo.power_w("decode") > single.power_w("decode")
        assert octo.power_w("decode") / 8 < single.power_w("decode")

    def test_step_overhead_includes_tp_communication(self):
        single = ClusterSpec(gpu=A100_40GB, tensor_parallel=1)
        octo = ClusterSpec(gpu=A100_40GB, tensor_parallel=8)
        assert octo.step_overhead > single.step_overhead


class TestPerformanceModel:
    @pytest.fixture
    def perf_8b(self) -> PerformanceModel:
        return PerformanceModel(model=LLAMA_3_1_8B, cluster=cluster_for_model(LLAMA_3_1_8B))

    @pytest.fixture
    def perf_70b(self) -> PerformanceModel:
        return PerformanceModel(model=LLAMA_3_1_70B, cluster=cluster_for_model(LLAMA_3_1_70B))

    def test_prefill_time_grows_with_tokens(self, perf_8b):
        assert perf_8b.prefill_time(4000) > perf_8b.prefill_time(1000) > 0

    def test_prefill_time_drops_with_cached_tokens(self, perf_8b):
        full = perf_8b.prefill_time(3000, cached_tokens=0)
        cached = perf_8b.prefill_time(500, cached_tokens=2500)
        assert cached < full

    def test_prefill_of_zero_tokens_is_only_overhead(self, perf_8b):
        assert perf_8b.prefill_time(0) == pytest.approx(perf_8b.cluster.step_overhead)

    def test_decode_step_empty_batch_is_zero(self, perf_8b):
        assert perf_8b.decode_step_time([]) == 0.0

    def test_decode_step_time_single_sequence_near_weight_read_time(self, perf_8b):
        step = perf_8b.decode_step_time([1000])
        weight_read = LLAMA_3_1_8B.weight_bytes / (
            perf_8b.cluster.total_mem_bandwidth * perf_8b.cluster.gpu.mbu_decode
        )
        assert step == pytest.approx(weight_read + perf_8b.cluster.step_overhead, rel=0.2)

    def test_decode_step_grows_slowly_with_batch(self, perf_8b):
        single = perf_8b.decode_step_time([1000])
        batch = perf_8b.decode_step_time([1000] * 16)
        assert batch > single
        assert batch < 2.5 * single  # continuous batching amortises the weight read

    def test_decode_step_grows_with_context(self, perf_8b):
        assert perf_8b.decode_step_time([8000]) > perf_8b.decode_step_time([100])

    def test_70b_decode_slower_than_8b(self, perf_8b, perf_70b):
        assert perf_70b.decode_step_time([500]) > perf_8b.decode_step_time([500])

    def test_generation_time_matches_sharegpt_scale(self, perf_8b):
        # ~250 output tokens on one A100 should land in the couple-of-seconds
        # range the paper reports for single-turn inference (4.23 s).
        latency = perf_8b.generation_time(prompt_tokens=300, output_tokens=250)
        assert 2.0 < latency < 8.0

    @given(tokens=st.integers(1, 8000), cached=st.integers(0, 4000))
    @settings(max_examples=40, deadline=None)
    def test_prefill_time_is_positive_and_monotone_in_new_tokens(self, tokens, cached):
        perf = PerformanceModel(model=LLAMA_3_1_8B, cluster=cluster_for_model(LLAMA_3_1_8B))
        time_now = perf.prefill_time(tokens, cached)
        assert time_now > 0
        assert perf.prefill_time(tokens + 500, cached) >= time_now
