"""Declarative studies: grid expansion, determinism, slicing, Pareto queries.

The expensive paths (actual experiment execution) run on tiny chatbot
specs; the geometry (expansion order, seed handling, frontier maths) is
pinned on hand-built results so the assertions are exact.
"""

from __future__ import annotations

import json
from typing import List

import pytest

from repro.api import (
    ArrivalSpec,
    ExperimentSpec,
    StudyAxis,
    StudyPoint,
    StudyResult,
    StudySpec,
    apply_axis_value,
    resolve_metric,
    run_experiment,
    run_study,
    run_sweep,
)
from repro.serving.shapes import ConstantShape, SquareWaveShape


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        agent="chatbot",
        workload="sharegpt",
        max_decode_chunk=8,
        arrival=ArrivalSpec(
            process="poisson", qps=2.0, num_requests=6, task_pool_size=5
        ),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


# ---------------------------------------------------------------------------
# Axes and expansion
# ---------------------------------------------------------------------------


class TestStudySpecExpansion:
    def test_grid_is_cartesian_in_declared_order(self):
        study = StudySpec(
            base=tiny_spec(),
            axes=(
                StudyAxis(name="qps", values=(1.0, 2.0)),
                StudyAxis(name="scheduler", values=("fcfs", "priority")),
            ),
        )
        expanded = study.expand()
        assert [coords for coords, _, _ in expanded] == [
            {"qps": 1.0, "scheduler": "fcfs"},
            {"qps": 1.0, "scheduler": "priority"},
            {"qps": 2.0, "scheduler": "fcfs"},
            {"qps": 2.0, "scheduler": "priority"},
        ]
        assert study.num_points == 4

    def test_seeds_expand_innermost(self):
        study = StudySpec(
            base=tiny_spec(),
            axes=(StudyAxis(name="qps", values=(1.0, 2.0)),),
            seeds=(0, 1),
        )
        assert [(coords["qps"], seed) for coords, _, seed in study.expand()] == [
            (1.0, 0), (1.0, 1), (2.0, 0), (2.0, 1)
        ]

    def test_explicit_points_apply_dotted_paths(self):
        study = StudySpec(
            base=tiny_spec(),
            points=({"arrival.qps": 3.0}, {"scheduler": "priority"}),
        )
        specs = [study.spec_for(coords, seed) for coords, _, seed in study.expand()]
        assert specs[0].arrival.qps == 3.0
        assert specs[1].scheduler == "priority"

    def test_qps_axis_uses_at_qps(self):
        # The qps axis must switch a characterization base to open-loop
        # Poisson arrivals, exactly like the legacy sweep.
        study = StudySpec(
            base=tiny_spec(arrival=ArrivalSpec(process="single", num_requests=6)),
            axes=(StudyAxis(name="qps", values=(1.5,)),),
        )
        ((coords, _, seed),) = study.expand()
        spec = study.spec_for(coords, seed)
        assert spec.arrival.process == "poisson"
        assert spec.arrival.qps == 1.5

    def test_invalid_points_fail_at_construction(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            StudySpec(
                base=tiny_spec(),
                axes=(StudyAxis(name="scheduler", values=("fcfs", "lifo")),),
            )
        with pytest.raises(ValueError, match="no field"):
            StudySpec(
                base=tiny_spec(),
                axes=(StudyAxis(name="nonsense.path", values=(1,)),),
            )
        with pytest.raises(ValueError, match="is None on the base spec"):
            StudySpec(
                base=tiny_spec(),
                axes=(StudyAxis(name="autoscaler.forecaster", values=("holt",)),),
            )

    def test_exactly_one_of_axes_or_points(self):
        with pytest.raises(ValueError, match="exactly one"):
            StudySpec(base=tiny_spec())
        with pytest.raises(ValueError, match="exactly one"):
            StudySpec(
                base=tiny_spec(),
                axes=(StudyAxis(name="qps", values=(1.0,)),),
                points=({"qps": 2.0},),
            )

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="at least one value"):
            StudyAxis(name="qps", values=())
        with pytest.raises(ValueError, match="labels must match"):
            StudyAxis(name="qps", values=(1.0, 2.0), labels=("one",))
        with pytest.raises(ValueError, match="duplicate study axis"):
            StudySpec(
                base=tiny_spec(),
                axes=(
                    StudyAxis(name="qps", values=(1.0,)),
                    StudyAxis(name="qps", values=(2.0,)),
                ),
            )

    def test_apply_axis_value_nested(self):
        spec = tiny_spec()
        shaped = apply_axis_value(
            spec, "arrival.shape", SquareWaveShape()
        )
        assert isinstance(shaped.arrival.shape, SquareWaveShape)
        assert spec.arrival.shape is None  # base untouched

    def test_serialization_round_trip(self):
        study = StudySpec(
            base=tiny_spec(),
            axes=(
                StudyAxis(
                    name="shape",
                    field="arrival.shape",
                    values=(ConstantShape(), SquareWaveShape()),
                    labels=("steady", "burst"),
                ),
                StudyAxis(name="qps", values=(1.0, 2.0)),
            ),
            seeds=(0, 1),
            name="round-trip",
        )
        rebuilt = StudySpec.from_dict(json.loads(json.dumps(study.to_dict())))
        assert rebuilt == study

    def test_serialization_round_trip_rebuilds_nested_agent_config(self):
        from repro.agents import AgentConfig
        from repro.api import WeightedWorkload

        mixtures = (
            (
                WeightedWorkload(
                    agent="chatbot", workload="sharegpt", name="chat",
                    agent_config=AgentConfig(max_iterations=3),
                ),
                WeightedWorkload(agent="react", workload="hotpotqa", name="agent"),
            ),
            (
                WeightedWorkload(
                    agent="chatbot", workload="sharegpt", name="chat",
                    shape=SquareWaveShape(),
                ),
                WeightedWorkload(agent="react", workload="hotpotqa", name="agent"),
            ),
        )
        study = StudySpec(
            base=tiny_spec(workloads=mixtures[0]),
            axes=(StudyAxis(name="workloads", values=mixtures),),
        )
        rebuilt = StudySpec.from_dict(json.loads(json.dumps(study.to_dict())))
        assert rebuilt == study
        first = rebuilt.axes[0].values[0][0]
        assert isinstance(first.agent_config, AgentConfig)


# ---------------------------------------------------------------------------
# Hand-built results: slicing, tabulation, Pareto geometry
# ---------------------------------------------------------------------------


class FakeOutcome:
    """Duck-typed stand-in for a ResultSet (metrics resolve by attribute)."""

    def __init__(self, cost: float, p95: float):
        self.replica_seconds = cost
        self.p95_latency = p95
        self.class_stats = {}


def hand_built(points: List[tuple]) -> StudyResult:
    # The axis targets a real field (seed) so eager validation passes; the
    # outcomes themselves are hand-built fakes.
    study = StudySpec(
        base=tiny_spec(),
        axes=(
            StudyAxis(name="fleet", field="seed", values=tuple(range(len(points)))),
        ),
    )
    result = StudyResult(study=study)
    for index, (label, cost, p95) in enumerate(points):
        result.points.append(
            StudyPoint(
                coords={"fleet": index},
                labels={"fleet": label},
                seed=0,
                spec=study.base,
                outcome=FakeOutcome(cost, p95),
            )
        )
    return result


class TestPareto:
    def test_frontier_drops_dominated_points(self):
        result = hand_built(
            [
                ("lean", 10.0, 8.0),
                ("dominated", 12.0, 9.0),  # worse cost AND worse p95 than mid
                ("mid", 12.0, 6.0),
                ("heavy", 20.0, 5.0),
            ]
        )
        frontier = result.pareto_frontier(cost="replica_seconds", quality="p95_latency")
        assert [entry.point.labels["fleet"] for entry in frontier] == [
            "lean", "mid", "heavy"
        ]
        assert [entry.cost for entry in frontier] == [10.0, 12.0, 20.0]

    def test_single_point_is_its_own_frontier(self):
        result = hand_built([("only", 5.0, 5.0)])
        frontier = result.pareto_frontier("replica_seconds", "p95_latency")
        assert len(frontier) == 1

    def test_duplicate_points_both_survive(self):
        result = hand_built([("a", 5.0, 5.0), ("b", 5.0, 5.0)])
        frontier = result.pareto_frontier("replica_seconds", "p95_latency")
        assert len(frontier) == 2

    def test_maximized_quality_flips_dominance(self):
        result = hand_built([("cheap-bad", 5.0, 0.5), ("pricey-good", 10.0, 0.9)])
        # Treat p95 slot as an attainment-style score: higher is better.
        frontier = result.pareto_frontier(
            "replica_seconds", "p95_latency", minimize_quality=False
        )
        assert len(frontier) == 2
        # With minimised quality the pricier point is dominated.
        frontier = result.pareto_frontier("replica_seconds", "p95_latency")
        assert [entry.point.labels["fleet"] for entry in frontier] == ["cheap-bad"]

    def test_callable_metrics(self):
        result = hand_built([("a", 5.0, 2.0), ("b", 6.0, 1.0)])
        frontier = result.pareto_frontier(
            cost=lambda outcome: outcome.replica_seconds,
            quality=lambda outcome: outcome.p95_latency * 2,
        )
        assert [entry.quality for entry in frontier] == [4.0, 2.0]

    def test_metric_resolution_errors(self):
        outcome = FakeOutcome(1.0, 1.0)
        with pytest.raises(ValueError, match="no metric"):
            resolve_metric(outcome, "nope")
        with pytest.raises(ValueError, match="no traffic class"):
            resolve_metric(outcome, "class_p95:chat")
        with pytest.raises(ValueError, match="unknown per-class metric"):
            resolve_metric(outcome, "class_nope:chat")


class TestSlicing:
    def test_slice_by_label_and_value(self):
        result = hand_built([("lean", 1.0, 1.0), ("heavy", 2.0, 2.0)])
        assert len(result.slice(fleet="lean")) == 1
        assert len(result.slice(fleet=1)) == 1  # coordinate value
        assert len(result.slice(fleet="nope")) == 0

    def test_axis_values_and_names(self):
        result = hand_built([("lean", 1.0, 1.0), ("heavy", 2.0, 2.0)])
        assert result.axis_names == ["fleet"]
        assert result.axis_values("fleet") == [0, 1]
        with pytest.raises(ValueError, match="no axis"):
            result.axis_values("ghost")


# ---------------------------------------------------------------------------
# Execution: determinism and the legacy bridge
# ---------------------------------------------------------------------------


class TestRunStudy:
    def test_points_reproduce_standalone_experiments(self):
        study = StudySpec(
            base=tiny_spec(),
            axes=(StudyAxis(name="qps", values=(1.0, 2.0)),),
        )
        result = run_study(study)
        assert len(result) == 2
        for point in result.points:
            standalone = run_experiment(point.spec)
            assert point.outcome.latencies == standalone.latencies

    def test_seed_as_an_axis_actually_sweeps(self):
        # A seed axis must not be silently reset by the per-point seed fill.
        study = StudySpec(
            base=tiny_spec(),
            axes=(StudyAxis(name="seed", values=(0, 1)),),
        )
        result = run_study(study)
        assert [point.spec.seed for point in result.points] == [0, 1]
        assert result.points[0].outcome.latencies != result.points[1].outcome.latencies

    def test_seed_axis_and_seeds_repetition_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            StudySpec(
                base=tiny_spec(),
                axes=(StudyAxis(name="seed", values=(0, 1)),),
                seeds=(2, 3),
            )

    def test_seed_axis_changes_outcomes_deterministically(self):
        study = StudySpec(
            base=tiny_spec(),
            axes=(StudyAxis(name="qps", values=(2.0,)),),
            seeds=(0, 1),
        )
        first = run_study(study)
        second = run_study(study)
        assert [p.outcome.latencies for p in first.points] == [
            p.outcome.latencies for p in second.points
        ]
        assert first.points[0].outcome.latencies != first.points[1].outcome.latencies
        assert [p.seed for p in first.points] == [0, 1]

    def test_run_sweep_is_a_one_axis_study(self):
        spec = tiny_spec()
        qps_values = [1.0, 2.0]
        sweep = run_sweep(spec, qps_values)
        manual = [run_experiment(spec.at_qps(qps)).serving for qps in qps_values]
        assert [r.latencies for r in sweep.results] == [r.latencies for r in manual]
        assert [r.energy_wh for r in sweep.results] == [r.energy_wh for r in manual]
        assert sweep.qps_values == [r.offered_qps for r in manual]

    def test_run_sweep_with_no_loads_returns_empty_sweep(self):
        # The historical loop ran zero times; the study shim must too.
        sweep = run_sweep(tiny_spec(), [])
        assert sweep.results == []
        assert sweep.peak_throughput() == 0.0

    def test_progress_callback_sees_every_point(self):
        seen = []
        study = StudySpec(
            base=tiny_spec(), axes=(StudyAxis(name="qps", values=(1.0, 2.0)),)
        )
        run_study(study, progress=seen.append)
        assert [point.coords["qps"] for point in seen] == [1.0, 2.0]

    def test_parallel_matches_serial_byte_for_byte(self):
        # Grid of 2 axes x 2 values with 2 seeds = 8 points, executed both
        # in-process and across a 4-worker process pool.  Everything the
        # study produces must be identical: point order, full outcomes,
        # tabulation rows, and the Pareto frontier (whose points embed the
        # complete per-point ResultSet, so this is a deep equality).
        study = StudySpec(
            base=tiny_spec(),
            axes=(
                StudyAxis(name="qps", values=(1.0, 2.0)),
                StudyAxis(name="scheduler", values=("fcfs", "vtc")),
            ),
            seeds=(0, 7),
        )
        serial = run_study(study, parallel=1)
        parallel = run_study(study, parallel=4)

        assert [p.coords for p in serial.points] == [p.coords for p in parallel.points]
        assert [p.seed for p in serial.points] == [p.seed for p in parallel.points]
        for a, b in zip(serial.points, parallel.points):
            assert a.outcome.latencies == b.outcome.latencies
            assert a.outcome.energy_wh == b.outcome.energy_wh
            assert a == b
        assert serial.tabulate() == parallel.tabulate()
        assert serial.pareto_frontier(
            cost="replica_seconds", quality="p95_latency"
        ) == parallel.pareto_frontier(cost="replica_seconds", quality="p95_latency")

    def test_parallel_progress_preserves_tabulation_order(self):
        seen = []
        study = StudySpec(
            base=tiny_spec(), axes=(StudyAxis(name="qps", values=(1.0, 2.0)),)
        )
        run_study(study, progress=seen.append, parallel=2)
        assert [point.coords["qps"] for point in seen] == [1.0, 2.0]

    def test_parallel_rejects_nonpositive_workers(self):
        study = StudySpec(
            base=tiny_spec(), axes=(StudyAxis(name="qps", values=(1.0,)),)
        )
        with pytest.raises(ValueError, match="parallel"):
            run_study(study, parallel=0)

    def test_result_set_metric_uses_study_vocabulary(self):
        outcome = run_experiment(tiny_spec())
        assert outcome.metric("replica_seconds") == outcome.replica_seconds
        assert outcome.metric("p95_latency") == outcome.p95_latency
        with pytest.raises(ValueError, match="no metric"):
            outcome.metric("nope")

    def test_tabulate_and_format(self):
        study = StudySpec(
            base=tiny_spec(), axes=(StudyAxis(name="qps", values=(2.0,)),)
        )
        result = run_study(study)
        rows = result.tabulate()
        assert rows[0]["qps"] == "2"
        assert rows[0]["completed"] == 6
        table = result.format("tiny study")
        assert "tiny study" in table and "completed" in table
        # Legitimately absent metrics render as empty cells...
        rows = result.tabulate([("chat_p95", "class_p95:chat")])
        assert rows[0]["chat_p95"] is None
        # ...but a misspelled metric name fails loudly.
        with pytest.raises(ValueError, match="no metric"):
            result.tabulate([("p95", "p95_latency_s")])
