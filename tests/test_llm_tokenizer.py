"""Tests for the synthetic tokenizer, prompts, and block hashing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.tokenizer import (
    Prompt,
    SegmentKind,
    SyntheticTokenizer,
    TokenSpan,
    block_hashes,
)


@pytest.fixture
def tokenizer() -> SyntheticTokenizer:
    return SyntheticTokenizer()


class TestSyntheticTokenizer:
    def test_encode_is_deterministic(self, tokenizer):
        assert tokenizer.encode("the quick brown fox") == tokenizer.encode("the quick brown fox")

    def test_encode_empty_string(self, tokenizer):
        assert tokenizer.encode("") == ()

    def test_encode_different_text_differs(self, tokenizer):
        assert tokenizer.encode("alpha beta") != tokenizer.encode("gamma delta")

    def test_count_matches_encode_length(self, tokenizer):
        text = "a reasonably long sentence with several words inside it"
        assert tokenizer.count(text) == len(tokenizer.encode(text))

    def test_token_ids_within_vocab(self, tokenizer):
        ids = tokenizer.encode("some words to check the vocabulary bounds carefully")
        assert all(0 <= token < tokenizer.vocab_size for token in ids)

    def test_synthetic_tokens_deterministic_and_exact_length(self, tokenizer):
        a = tokenizer.synthetic_tokens("stream-x", 137)
        b = tokenizer.synthetic_tokens("stream-x", 137)
        assert a == b
        assert len(a) == 137

    def test_synthetic_tokens_prefix_property(self, tokenizer):
        shorter = tokenizer.synthetic_tokens("stream-y", 50)
        longer = tokenizer.synthetic_tokens("stream-y", 80)
        assert longer[:50] == shorter

    def test_synthetic_tokens_zero_or_negative_count(self, tokenizer):
        assert tokenizer.synthetic_tokens("s", 0) == ()
        assert tokenizer.synthetic_tokens("s", -3) == ()

    def test_different_streams_differ(self, tokenizer):
        assert tokenizer.synthetic_tokens("a", 32) != tokenizer.synthetic_tokens("b", 32)

    def test_span_constructor(self, tokenizer):
        span = tokenizer.span(SegmentKind.INSTRUCTION, "instr", 25)
        assert span.kind is SegmentKind.INSTRUCTION
        assert len(span) == 25

    def test_text_span_constructor(self, tokenizer):
        span = tokenizer.text_span(SegmentKind.TOOL_HISTORY, "observation text here")
        assert span.kind is SegmentKind.TOOL_HISTORY
        assert len(span) > 0

    def test_invalid_vocab_size_raises(self):
        with pytest.raises(ValueError):
            SyntheticTokenizer(vocab_size=1)

    @given(st.text(min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_encode_never_crashes_and_is_stable(self, text):
        tokenizer = SyntheticTokenizer()
        assert tokenizer.encode(text) == tokenizer.encode(text)


class TestPrompt:
    def test_empty_prompt_has_zero_length(self):
        assert len(Prompt()) == 0

    def test_append_skips_empty_spans(self):
        prompt = Prompt()
        prompt.append(TokenSpan(SegmentKind.USER, ()))
        assert len(prompt.spans) == 0

    def test_token_ids_concatenate_spans_in_order(self, tokenizer):
        prompt = Prompt()
        span_a = tokenizer.span(SegmentKind.INSTRUCTION, "a", 10)
        span_b = tokenizer.span(SegmentKind.USER, "b", 5)
        prompt.extend([span_a, span_b])
        assert prompt.token_ids == span_a.tokens + span_b.tokens
        assert len(prompt) == 15

    def test_count_by_kind(self, tokenizer):
        prompt = Prompt()
        prompt.append(tokenizer.span(SegmentKind.INSTRUCTION, "a", 10))
        prompt.append(tokenizer.span(SegmentKind.FEW_SHOT, "b", 20))
        prompt.append(tokenizer.span(SegmentKind.FEW_SHOT, "c", 5))
        counts = prompt.count_by_kind()
        assert counts[SegmentKind.INSTRUCTION] == 10
        assert counts[SegmentKind.FEW_SHOT] == 25
        assert counts[SegmentKind.OUTPUT] == 0

    def test_copy_is_independent(self, tokenizer):
        prompt = Prompt()
        prompt.append(tokenizer.span(SegmentKind.USER, "u", 8))
        clone = prompt.copy()
        clone.append(tokenizer.span(SegmentKind.LLM_HISTORY, "h", 4))
        assert len(prompt) == 8
        assert len(clone) == 12


class TestBlockHashes:
    def test_partial_block_is_ignored(self):
        tokens = tuple(range(20))
        assert len(block_hashes(tokens, block_size=16)) == 1

    def test_exact_multiple_of_block_size(self):
        tokens = tuple(range(48))
        assert len(block_hashes(tokens, block_size=16)) == 3

    def test_shared_prefix_shares_hashes(self):
        base = tuple(range(64))
        extended = base + tuple(range(1000, 1032))
        hashes_base = block_hashes(base, 16)
        hashes_extended = block_hashes(extended, 16)
        assert hashes_extended[: len(hashes_base)] == hashes_base

    def test_divergent_prefix_changes_all_following_hashes(self):
        a = tuple(range(64))
        b = (999,) + tuple(range(1, 64))
        hashes_a = block_hashes(a, 16)
        hashes_b = block_hashes(b, 16)
        assert all(x != y for x, y in zip(hashes_a, hashes_b))

    def test_chained_hashing_depends_on_earlier_blocks(self):
        a = tuple(range(32))
        b = tuple(range(16, 48))
        # The second block of `a` covers the same tokens as the first of `b`,
        # but the chain makes their hashes differ.
        assert block_hashes(a, 16)[1] != block_hashes(b, 16)[0]

    @given(st.lists(st.integers(0, 1000), min_size=0, max_size=200), st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_hash_count_matches_full_blocks(self, tokens, block_size):
        assert len(block_hashes(tokens, block_size)) == len(tokens) // block_size
