"""Tests for the agent serving system, load generation, and QPS sweeps."""

from __future__ import annotations

import pytest

from repro.agents import AgentConfig
from repro.core import SingleRequestRunner
from repro.serving import (
    AgentServer,
    ArrivalPlan,
    ServingConfig,
    poisson_plan,
    run_at_qps,
    sequential_plan,
    sweep_qps,
    uniform_plan,
)
from repro.sim import RandomStream
from repro.workloads import create_workload


class TestArrivalPlans:
    def test_poisson_plan_shapes(self):
        workload = create_workload("hotpotqa", seed=1)
        plan = poisson_plan(workload, qps=2.0, num_requests=50, stream=RandomStream(1, "p"))
        assert len(plan) == 50
        assert plan.offered_qps == pytest.approx(2.0, rel=0.4)
        assert all(b >= a for a, b in zip(plan.arrival_times, plan.arrival_times[1:]))

    def test_poisson_plan_requires_requests(self):
        workload = create_workload("hotpotqa", seed=1)
        with pytest.raises(ValueError):
            poisson_plan(workload, qps=1.0, num_requests=0, stream=RandomStream(1, "p"))

    def test_uniform_plan_evenly_spaced(self):
        workload = create_workload("webshop", seed=1)
        plan = uniform_plan(workload, qps=2.0, num_requests=4)
        gaps = [b - a for a, b in zip(plan.arrival_times, plan.arrival_times[1:])]
        assert all(gap == pytest.approx(0.5) for gap in gaps)

    def test_sequential_plan_all_at_time_zero(self):
        workload = create_workload("hotpotqa", seed=1)
        plan = sequential_plan(workload, 5)
        assert plan.arrival_times == [0.0] * 5

    def test_mismatched_lengths_rejected(self):
        workload = create_workload("hotpotqa", seed=1)
        tasks = workload.sample_tasks(2)
        with pytest.raises(ValueError):
            ArrivalPlan(arrival_times=[0.0], tasks=tasks)

    def test_decreasing_arrival_times_rejected(self):
        workload = create_workload("hotpotqa", seed=1)
        tasks = workload.sample_tasks(2)
        with pytest.raises(ValueError):
            ArrivalPlan(arrival_times=[2.0, 1.0], tasks=tasks)


def small_config(**overrides) -> ServingConfig:
    defaults = dict(
        agent="react",
        benchmark="hotpotqa",
        model="8b",
        agent_config=AgentConfig(max_iterations=5),
        max_decode_chunk=8,
        seed=0,
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


class TestAgentServer:
    def test_open_loop_serving_completes_all_requests(self):
        result = run_at_qps(small_config(), qps=1.0, num_requests=12, task_pool_size=8)
        assert result.num_completed == 12
        assert result.throughput_qps > 0
        assert result.p95_latency >= result.latency_stats.p50
        assert result.energy_wh > 0

    def test_sequential_serving(self):
        server = AgentServer(small_config())
        result = server.serve_sequential(4)
        assert result.num_completed == 4
        assert result.offered_qps == 0.0
        assert result.duration == pytest.approx(sum(result.latencies), rel=0.05)

    def test_concurrent_serving_beats_sequential_throughput(self):
        sequential = AgentServer(small_config()).serve_sequential(8)
        concurrent = run_at_qps(small_config(), qps=2.0, num_requests=8, task_pool_size=8)
        assert concurrent.throughput_qps > sequential.throughput_qps

    def test_chatbot_serving_has_low_latency_variance(self):
        config = small_config(agent="chatbot", benchmark="sharegpt")
        result = run_at_qps(config, qps=2.0, num_requests=15, task_pool_size=15)
        assert result.num_completed == 15
        assert result.p95_latency < 4 * result.latency_stats.p50 + 1.0

    def test_higher_load_increases_tail_latency(self):
        low = run_at_qps(small_config(), qps=0.3, num_requests=15, task_pool_size=10)
        high = run_at_qps(small_config(), qps=4.0, num_requests=15, task_pool_size=10)
        assert high.p95_latency > low.p95_latency

    def test_prefix_caching_improves_hit_rate_and_latency(self):
        cached = run_at_qps(small_config(enable_prefix_caching=True), qps=1.0, num_requests=12)
        uncached = run_at_qps(small_config(enable_prefix_caching=False), qps=1.0, num_requests=12)
        assert cached.prefix_cache_hit_rate > 0.5
        assert uncached.prefix_cache_hit_rate == 0.0
        assert cached.p95_latency <= uncached.p95_latency * 1.05

    def test_kv_memory_lower_with_prefix_caching(self):
        cached = run_at_qps(small_config(enable_prefix_caching=True), qps=0.5, num_requests=12)
        uncached = run_at_qps(small_config(enable_prefix_caching=False), qps=0.5, num_requests=12)
        assert cached.kv_average_bytes < uncached.kv_average_bytes
        assert cached.kv_max_bytes <= uncached.kv_max_bytes

    def test_energy_per_query_positive(self):
        result = run_at_qps(small_config(), qps=0.5, num_requests=6)
        assert result.energy_wh_per_query > 0

    def test_serving_result_accuracy_in_unit_range(self):
        result = run_at_qps(small_config(), qps=0.5, num_requests=10)
        assert 0.0 <= result.accuracy <= 1.0


class TestQpsSweep:
    def test_sweep_produces_one_result_per_qps(self):
        sweep = sweep_qps(small_config(), qps_values=(0.5, 1.0), num_requests=8, task_pool_size=8)
        assert len(sweep.results) == 2
        assert sweep.qps_values == [pytest.approx(0.5, rel=0.6), pytest.approx(1.0, rel=0.6)]
        assert len(sweep.p95_latencies) == 2

    def test_peak_throughput_positive_and_bounded(self):
        sweep = sweep_qps(small_config(), qps_values=(0.25, 0.5, 1.0), num_requests=10)
        peak = sweep.peak_throughput()
        assert 0 < peak <= 1.5

    def test_peak_throughput_empty_sweep_is_zero(self):
        from repro.serving.sweep import QpsSweepResult

        assert QpsSweepResult(config=small_config()).peak_throughput() == 0.0

    def test_sharegpt_peak_higher_than_agent_peak(self):
        agent_sweep = sweep_qps(small_config(), qps_values=(0.5, 1.0), num_requests=10)
        chatbot_sweep = sweep_qps(
            small_config(agent="chatbot", benchmark="sharegpt"),
            qps_values=(2.0, 4.0),
            num_requests=10,
        )
        assert chatbot_sweep.peak_throughput() > agent_sweep.peak_throughput()


class TestSingleRequestRunnerIntegration:
    def test_runner_produces_observations_with_engine_metrics(self):
        runner = SingleRequestRunner(model="8b", seed=1)
        result = runner.run("react", "hotpotqa", num_tasks=3)
        assert result.num_requests == 3
        for observation in result.observations:
            assert observation.energy_wh > 0
            assert observation.gpu.total > 0
            assert observation.kv_max_bytes > 0
        assert result.mean_llm_calls >= 2
        assert 0 <= result.accuracy <= 1

    def test_runner_respects_explicit_tasks(self):
        runner = SingleRequestRunner(model="8b", seed=1)
        workload = create_workload("math", seed=1)
        tasks = workload.sample_tasks(2)
        result = runner.run("react", "math", tasks=tasks)
        assert result.num_requests == 2
        assert [obs.result.task_id for obs in result.observations] == [t.task_id for t in tasks]

    def test_gpu_idle_fraction_larger_for_slow_tools(self):
        runner = SingleRequestRunner(model="8b", seed=1)
        hotpot = runner.run("react", "hotpotqa", num_tasks=4)
        webshop = runner.run("react", "webshop", num_tasks=4)
        assert hotpot.gpu_breakdown().fractions["idle"] > webshop.gpu_breakdown().fractions["idle"]

    def test_prefix_caching_flag_reflected_in_result(self):
        runner = SingleRequestRunner(model="8b", enable_prefix_caching=False, seed=1)
        result = runner.run("cot", "hotpotqa", num_tasks=2)
        assert result.prefix_caching is False
