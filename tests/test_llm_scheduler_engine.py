"""Tests for the FCFS scheduler and the discrete-event serving engine."""

from __future__ import annotations

import pytest

from repro.llm import (
    EngineConfig,
    KVCacheConfig,
    LLMClient,
    LLMEngine,
    PrefixCache,
    Prompt,
    SamplingParams,
    Scheduler,
    SchedulerConfig,
    StepKind,
)
from repro.llm.models import LLAMA_3_1_8B
from repro.llm.request import LLMRequest, RequestState
from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer
from repro.sim import Environment

TOKENIZER = SyntheticTokenizer()


def make_request(prompt_tokens: int, output_tokens: int = 16, stream: str = "req") -> LLMRequest:
    prompt = Prompt()
    prompt.append(TOKENIZER.span(SegmentKind.USER, stream, prompt_tokens))
    return LLMRequest(prompt=prompt, sampling=SamplingParams(output_tokens=output_tokens))


def make_scheduler(num_blocks: int = 256, **scheduler_kwargs) -> Scheduler:
    config = KVCacheConfig(
        block_size=16,
        num_blocks=num_blocks,
        bytes_per_block=16 * LLAMA_3_1_8B.kv_bytes_per_token,
        enable_prefix_caching=True,
    )
    return Scheduler(SchedulerConfig(**scheduler_kwargs), PrefixCache(config))


class TestScheduler:
    def test_no_work_returns_none(self):
        scheduler = make_scheduler()
        assert scheduler.schedule() is None
        assert not scheduler.has_work()

    def test_waiting_request_becomes_prefill_step(self):
        scheduler = make_scheduler()
        request = make_request(100)
        scheduler.add_request(request)
        step = scheduler.schedule()
        assert step.kind is StepKind.PREFILL
        assert step.prefills[0].request is request
        assert request.state is RequestState.RUNNING

    def test_prefill_has_priority_over_decode(self):
        scheduler = make_scheduler()
        running = make_request(64, stream="a")
        scheduler.add_request(running)
        first = scheduler.schedule()
        scheduler.on_prefill_complete(first.prefills)

        scheduler.add_request(make_request(64, stream="b"))
        step = scheduler.schedule()
        assert step.kind is StepKind.PREFILL

    def test_decode_step_covers_all_running(self):
        scheduler = make_scheduler()
        for index in range(3):
            scheduler.add_request(make_request(64, stream=f"r{index}"))
        step = scheduler.schedule()
        scheduler.on_prefill_complete(step.prefills)
        decode = scheduler.schedule()
        assert decode.kind is StepKind.DECODE
        assert len(decode.decodes) == 3

    def test_token_budget_limits_prefill_batch(self):
        scheduler = make_scheduler(max_num_batched_tokens=150)
        scheduler.add_request(make_request(100, stream="a"))
        scheduler.add_request(make_request(100, stream="b"))
        step = scheduler.schedule()
        assert len(step.prefills) == 1
        assert scheduler.num_waiting == 1

    def test_max_num_seqs_limits_admission(self):
        scheduler = make_scheduler(max_num_seqs=2)
        for index in range(4):
            scheduler.add_request(make_request(32, stream=f"s{index}"))
        step = scheduler.schedule()
        assert len(step.prefills) == 2
        assert scheduler.num_waiting == 2

    def test_admission_stops_when_kv_cache_full(self):
        scheduler = make_scheduler(num_blocks=8)
        scheduler.add_request(make_request(64, stream="fits"))       # 4 blocks
        scheduler.add_request(make_request(128, stream="too-big"))   # 8 blocks > remaining
        step = scheduler.schedule()
        assert len(step.prefills) == 1
        assert scheduler.num_waiting == 1

    def test_finish_request_frees_and_removes(self):
        scheduler = make_scheduler()
        request = make_request(64)
        scheduler.add_request(request)
        step = scheduler.schedule()
        scheduler.on_prefill_complete(step.prefills)
        scheduler.finish_request(request)
        assert scheduler.num_running == 0
        assert request.state is RequestState.FINISHED
        assert scheduler.kv_cache.active_blocks() == 0

    def test_preemption_when_decode_runs_out_of_blocks(self):
        # Two requests fill the cache; growing them forces a preemption.
        scheduler = make_scheduler(num_blocks=9)
        first = make_request(64, output_tokens=64, stream="a")    # 4 blocks
        second = make_request(64, output_tokens=64, stream="b")   # 4 blocks
        scheduler.add_request(first)
        scheduler.add_request(second)
        step = scheduler.schedule()
        scheduler.on_prefill_complete(step.prefills)
        # Simulate decoding until block boundaries force new allocations.
        for request in (first, second):
            request.output_token_ids.extend(range(16))
        decode = scheduler.schedule()
        assert decode.kind is StepKind.DECODE
        assert scheduler.preemption_count >= 1
        assert scheduler.num_waiting >= 1


class TestEngine:
    def run_single(self, env, engine, prompt_tokens=200, output_tokens=64, stream="a"):
        client = LLMClient(env, engine)
        prompt = Prompt()
        prompt.append(engine.tokenizer.span(SegmentKind.USER, stream, prompt_tokens))

        def proc():
            result = yield client.generate(prompt, output_tokens=output_tokens)
            return result

        return env.run(env.process(proc()))

    def test_single_request_produces_requested_tokens(self, env, engine):
        result = self.run_single(env, engine, output_tokens=48)
        assert result.output_tokens == 48
        assert result.prompt_tokens == 200
        assert result.e2e_latency > 0

    def test_timings_are_consistent(self, env, engine):
        result = self.run_single(env, engine)
        assert result.prefill_time > 0
        assert result.decode_time > 0
        assert result.e2e_latency >= result.prefill_time
        assert result.finish_time == pytest.approx(result.arrival_time + result.e2e_latency)

    def test_longer_outputs_take_longer(self):
        env_a, env_b = Environment(), Environment()
        engine_a = LLMEngine(env_a, EngineConfig())
        engine_b = LLMEngine(env_b, EngineConfig())
        short = self.run_single(env_a, engine_a, output_tokens=32)
        long = self.run_single(env_b, engine_b, output_tokens=256)
        assert long.e2e_latency > short.e2e_latency

    def test_energy_accumulates_per_request(self, env, engine):
        self.run_single(env, engine)
        assert engine.energy.total_wh > 0
        assert engine.energy.seconds_by_state is not None

    def test_kv_cache_released_after_completion(self, env, engine):
        self.run_single(env, engine)
        assert engine.kv_cache.active_blocks() == 0

    def test_step_records_cover_prefill_and_decode(self, env, engine):
        self.run_single(env, engine)
        kinds = {record.kind for record in engine.step_records}
        assert "prefill" in kinds
        assert "decode" in kinds

    def test_concurrent_requests_batch_and_all_finish(self, env, engine):
        client = LLMClient(env, engine)

        def proc(stream):
            prompt = Prompt()
            prompt.append(engine.tokenizer.span(SegmentKind.USER, stream, 150))
            result = yield client.generate(prompt, output_tokens=64)
            return result

        processes = [env.process(proc(f"s{i}")) for i in range(6)]
        env.run()
        assert all(process.value.output_tokens == 64 for process in processes)
        max_batch = max(record.batch_size for record in engine.step_records if record.kind == "decode")
        assert max_batch >= 2  # continuous batching actually batched

    def test_batched_execution_faster_than_sequential(self):
        def total_time(concurrent: bool) -> float:
            env = Environment()
            engine = LLMEngine(env, EngineConfig())
            client = LLMClient(env, engine)

            def proc(stream):
                prompt = Prompt()
                prompt.append(engine.tokenizer.span(SegmentKind.USER, stream, 150))
                yield client.generate(prompt, output_tokens=100)

            if concurrent:
                for index in range(4):
                    env.process(proc(f"c{index}"))
                env.run()
            else:
                for index in range(4):
                    env.run(env.process(proc(f"s{index}")))
            return env.now

        assert total_time(concurrent=True) < total_time(concurrent=False)

    def test_prefix_caching_reduces_latency_of_repeated_prompt(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig(enable_prefix_caching=True))
        first = self.run_single(env, engine, prompt_tokens=2000, output_tokens=16, stream="shared")
        second = self.run_single(env, engine, prompt_tokens=2000, output_tokens=16, stream="shared")
        assert second.cached_prompt_tokens > 1500
        assert second.prefill_time < first.prefill_time

    def test_prefix_caching_disabled_never_caches(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig(enable_prefix_caching=False))
        self.run_single(env, engine, prompt_tokens=2000, output_tokens=16, stream="shared")
        second = self.run_single(env, engine, prompt_tokens=2000, output_tokens=16, stream="shared")
        assert second.cached_prompt_tokens == 0

    def test_idle_period_recorded_between_requests(self, env, engine):
        client = LLMClient(env, engine)

        def proc():
            prompt = Prompt()
            prompt.append(engine.tokenizer.span(SegmentKind.USER, "gap", 100))
            yield client.generate(prompt, output_tokens=16)
            yield env.timeout(5.0)  # models a long tool call: the GPU sits idle
            yield client.generate(prompt, output_tokens=16)

        env.run(env.process(proc()))
        breakdown = engine.runtime_breakdown()
        assert breakdown["idle"] == pytest.approx(5.0, abs=0.5)

    def test_decode_chunking_preserves_token_counts(self):
        env = Environment()
        engine = LLMEngine(env, EngineConfig(max_decode_chunk=8))
        result = self.run_single(env, engine, output_tokens=100)
        assert result.output_tokens == 100

    def test_decode_chunking_approximates_unchunked_latency(self):
        env_a = Environment()
        exact = self.run_single(env_a, LLMEngine(env_a, EngineConfig(max_decode_chunk=1)), output_tokens=200)
        env_b = Environment()
        chunked = self.run_single(env_b, LLMEngine(env_b, EngineConfig(max_decode_chunk=8)), output_tokens=200)
        assert chunked.e2e_latency == pytest.approx(exact.e2e_latency, rel=0.1)

    def test_runtime_breakdown_window_clipping(self, env, engine):
        result = self.run_single(env, engine, output_tokens=64)
        half = result.finish_time / 2
        first_half = engine.runtime_breakdown(0.0, half)
        total = engine.runtime_breakdown(0.0, result.finish_time)
        assert sum(first_half.values()) <= sum(total.values()) + 1e-9

    def test_kv_memory_stats_positive_during_run(self, env, engine):
        result = self.run_single(env, engine, prompt_tokens=500, output_tokens=64)
        stats = engine.kv_memory_stats(0.0, result.finish_time)
        assert stats["max_bytes"] > 0
        assert 0 < stats["average_bytes"] <= stats["max_bytes"]

    def test_empty_prompt_rejected_by_client(self, env, engine):
        client = LLMClient(env, engine)
        with pytest.raises(ValueError):
            client.generate(Prompt(), output_tokens=10)

    def test_generate_many_runs_calls_in_parallel(self, env, engine):
        client = LLMClient(env, engine)
        prompt = Prompt()
        prompt.append(engine.tokenizer.span(SegmentKind.USER, "par", 100))

        def proc():
            results = yield client.generate_many([(prompt, 32), (prompt, 32), (prompt, 32)])
            return results

        results = env.run(env.process(proc()))
        assert len(results) == 3
        assert all(result.output_tokens == 32 for result in results.values())
