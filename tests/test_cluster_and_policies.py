"""Tests for the replica cluster, routing policies, and scheduler policies."""

from __future__ import annotations

from collections import deque

import pytest

from repro.api import ArrivalSpec, ExperimentSpec, run_experiment, run_sweep
from repro.llm import (
    EngineConfig,
    Prompt,
    SamplingParams,
    available_scheduler_policies,
    create_scheduler_policy,
)
from repro.llm.request import LLMRequest
from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer
from repro.serving import (
    Cluster,
    available_router_policies,
    create_router_policy,
)
from repro.sim import Environment

TOKENIZER = SyntheticTokenizer()


def make_request(
    prompt_tokens: int = 64,
    output_tokens: int = 16,
    stream: str = "req",
    priority: float = 0.0,
) -> LLMRequest:
    prompt = Prompt()
    prompt.append(TOKENIZER.span(SegmentKind.USER, stream, prompt_tokens))
    return LLMRequest(
        prompt=prompt,
        sampling=SamplingParams(output_tokens=output_tokens),
        metadata={"priority": priority} if priority else None,
    )


# ---------------------------------------------------------------------------
# Scheduler policies
# ---------------------------------------------------------------------------


class TestSchedulerPolicies:
    def test_registry_contents(self):
        assert available_scheduler_policies() == [
            "fcfs",
            "priority",
            "sjf-by-predicted-decode",
        ]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler policy"):
            create_scheduler_policy("shortest-prompt")

    def test_mixed_case_registration_is_reachable(self):
        from repro.llm.scheduler import (
            SCHEDULER_POLICIES,
            FCFSPolicy,
            register_scheduler_policy,
        )

        class EDFPolicy(FCFSPolicy):
            name = "EDF-Test"

        register_scheduler_policy(EDFPolicy)
        try:
            assert isinstance(create_scheduler_policy("edf-test"), EDFPolicy)
            assert isinstance(create_scheduler_policy("EDF-Test"), EDFPolicy)
        finally:
            SCHEDULER_POLICIES.pop("edf-test", None)

    def test_fcfs_always_picks_queue_head(self):
        policy = create_scheduler_policy("fcfs")
        waiting = deque(
            [make_request(output_tokens=n, stream=f"s{n}") for n in (30, 10, 20)]
        )
        assert policy.select_index(waiting, now=0.0) == 0

    def test_sjf_picks_shortest_predicted_decode(self):
        policy = create_scheduler_policy("sjf-by-predicted-decode")
        waiting = deque(
            [make_request(output_tokens=n, stream=f"s{n}") for n in (30, 10, 20)]
        )
        assert policy.select_index(waiting, now=0.0) == 1

    def test_sjf_breaks_ties_fcfs(self):
        policy = create_scheduler_policy("sjf-by-predicted-decode")
        waiting = deque(
            [make_request(output_tokens=8, stream=f"s{n}") for n in range(3)]
        )
        assert policy.select_index(waiting, now=0.0) == 0

    def test_priority_prefers_highest_priority(self):
        policy = create_scheduler_policy("priority")
        waiting = deque(
            [
                make_request(stream="low", priority=0.0),
                make_request(stream="high", priority=5.0),
                make_request(stream="mid", priority=2.0),
            ]
        )
        assert policy.select_index(waiting, now=0.0) == 1

    def test_priority_ties_resolve_fcfs(self):
        policy = create_scheduler_policy("priority")
        waiting = deque([make_request(stream=f"s{n}", priority=1.0) for n in range(3)])
        assert policy.select_index(waiting, now=0.0) == 0

    def test_all_policies_run_end_to_end(self):
        for policy in available_scheduler_policies():
            spec = ExperimentSpec(
                agent="chatbot",
                workload="sharegpt",
                scheduler=policy,
                arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=4, task_pool_size=4),
                max_decode_chunk=8,
            )
            outcome = run_experiment(spec)
            assert outcome.num_completed == 4, policy


# ---------------------------------------------------------------------------
# Router policies
# ---------------------------------------------------------------------------


class TestRouterPolicies:
    def _cluster(self, num_replicas: int = 4, router: str = "round-robin") -> Cluster:
        return Cluster(
            Environment(), EngineConfig(), num_replicas=num_replicas, router=router
        )

    def test_registry_contents(self):
        assert available_router_policies() == [
            "least-loaded",
            "prefix-affinity",
            "round-robin",
        ]

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router policy"):
            create_router_policy("weighted-random")

    def test_round_robin_cycles(self):
        cluster = self._cluster(router="round-robin")
        picks = [
            cluster.router.select(make_request(stream=f"s{n}"), cluster.replicas)
            for n in range(8)
        ]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_least_loaded_prefers_emptiest_replica(self):
        cluster = self._cluster(router="least-loaded")
        # Load replicas 0-2 by submitting through them directly.
        for index in (0, 0, 1, 2):
            cluster.replicas[index].submit(make_request(stream=f"load{index}"))
        assert cluster.router.select(make_request(stream="probe"), cluster.replicas) == 3

    def test_prefix_affinity_is_deterministic_and_sticky(self):
        cluster = self._cluster(router="prefix-affinity")
        first = cluster.router.select(make_request(stream="same"), cluster.replicas)
        again = cluster.router.select(make_request(stream="same"), cluster.replicas)
        assert first == again

    def test_prefix_affinity_spills_under_load(self):
        cluster = self._cluster(router="prefix-affinity")
        request = make_request(stream="hot")
        preferred = cluster.router.select(request, cluster.replicas)
        # Saturate the preferred replica beyond the spill threshold.
        for n in range(cluster.router.spill_threshold + 1):
            cluster.replicas[preferred].submit(make_request(stream=f"fill{n}"))
        spilled = cluster.router.select(make_request(stream="hot"), cluster.replicas)
        assert spilled != preferred

    def test_single_replica_routes_everything_to_it(self):
        for router in available_router_policies():
            cluster = self._cluster(num_replicas=1, router=router)
            for n in range(5):
                cluster.submit(make_request(stream=f"r{n}"))
            assert cluster.routed_counts == [5]

    def test_routing_deterministic_under_fixed_seed(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            replicas=3,
            router="round-robin",
            arrival=ArrivalSpec(process="poisson", qps=3.0, num_requests=9, task_pool_size=6),
            seed=11,
            max_decode_chunk=8,
        )
        first = run_experiment(spec).serving
        second = run_experiment(spec).serving
        assert first.routed_counts == second.routed_counts
        assert sum(first.routed_counts) >= 9
        assert first.latencies == second.latencies


# ---------------------------------------------------------------------------
# Cluster metric aggregation
# ---------------------------------------------------------------------------


class TestClusterAggregation:
    def test_replica_count_validation(self):
        with pytest.raises(ValueError, match="num_replicas"):
            Cluster(Environment(), EngineConfig(), num_replicas=0)

    def test_multi_replica_serving_reports_aggregates(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            replicas=2,
            arrival=ArrivalSpec(process="poisson", qps=4.0, num_requests=8, task_pool_size=6),
            max_decode_chunk=8,
        )
        result = run_experiment(spec).serving
        assert result.num_replicas == 2
        assert len(result.routed_counts) == 2
        assert sum(result.routed_counts) >= 8
        assert result.energy_wh > 0
        assert result.kv_max_bytes > 0
        assert 0.0 <= result.prefix_cache_hit_rate <= 1.0
