"""Tests for the replica cluster, routing policies, and scheduler policies."""

from __future__ import annotations

from collections import deque

import pytest

from repro.api import ArrivalSpec, ExperimentSpec, run_experiment, run_sweep
from repro.llm import (
    EngineConfig,
    Prompt,
    SamplingParams,
    available_scheduler_policies,
    create_scheduler_policy,
)
from repro.llm.request import LLMRequest
from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer
from repro.serving import (
    Cluster,
    available_router_policies,
    create_router_policy,
)
from repro.sim import Environment

TOKENIZER = SyntheticTokenizer()


def make_request(
    prompt_tokens: int = 64,
    output_tokens: int = 16,
    stream: str = "req",
    priority: float = 0.0,
) -> LLMRequest:
    prompt = Prompt()
    prompt.append(TOKENIZER.span(SegmentKind.USER, stream, prompt_tokens))
    return LLMRequest(
        prompt=prompt,
        sampling=SamplingParams(output_tokens=output_tokens),
        metadata={"priority": priority} if priority else None,
    )


# ---------------------------------------------------------------------------
# Scheduler policies
# ---------------------------------------------------------------------------


class TestSchedulerPolicies:
    def test_registry_contents(self):
        assert available_scheduler_policies() == [
            "fcfs",
            "priority",
            "sjf-by-predicted-decode",
            "vtc",
        ]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler policy"):
            create_scheduler_policy("shortest-prompt")

    def test_mixed_case_registration_is_reachable(self):
        from repro.llm.scheduler import (
            SCHEDULER_POLICIES,
            FCFSPolicy,
            register_scheduler_policy,
        )

        class EDFPolicy(FCFSPolicy):
            name = "EDF-Test"

        register_scheduler_policy(EDFPolicy)
        try:
            assert isinstance(create_scheduler_policy("edf-test"), EDFPolicy)
            assert isinstance(create_scheduler_policy("EDF-Test"), EDFPolicy)
        finally:
            SCHEDULER_POLICIES.pop("edf-test", None)

    def test_fcfs_always_picks_queue_head(self):
        policy = create_scheduler_policy("fcfs")
        waiting = deque(
            [make_request(output_tokens=n, stream=f"s{n}") for n in (30, 10, 20)]
        )
        assert policy.select_index(waiting, now=0.0) == 0

    def test_sjf_picks_shortest_predicted_decode(self):
        policy = create_scheduler_policy("sjf-by-predicted-decode")
        waiting = deque(
            [make_request(output_tokens=n, stream=f"s{n}") for n in (30, 10, 20)]
        )
        assert policy.select_index(waiting, now=0.0) == 1

    def test_sjf_breaks_ties_fcfs(self):
        policy = create_scheduler_policy("sjf-by-predicted-decode")
        waiting = deque(
            [make_request(output_tokens=8, stream=f"s{n}") for n in range(3)]
        )
        assert policy.select_index(waiting, now=0.0) == 0

    def test_priority_prefers_highest_priority(self):
        policy = create_scheduler_policy("priority")
        waiting = deque(
            [
                make_request(stream="low", priority=0.0),
                make_request(stream="high", priority=5.0),
                make_request(stream="mid", priority=2.0),
            ]
        )
        assert policy.select_index(waiting, now=0.0) == 1

    def test_priority_ties_resolve_fcfs(self):
        policy = create_scheduler_policy("priority")
        waiting = deque([make_request(stream=f"s{n}", priority=1.0) for n in range(3)])
        assert policy.select_index(waiting, now=0.0) == 0

    def test_all_policies_run_end_to_end(self):
        for policy in available_scheduler_policies():
            spec = ExperimentSpec(
                agent="chatbot",
                workload="sharegpt",
                scheduler=policy,
                arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=4, task_pool_size=4),
                max_decode_chunk=8,
            )
            outcome = run_experiment(spec)
            assert outcome.num_completed == 4, policy


# ---------------------------------------------------------------------------
# Router policies
# ---------------------------------------------------------------------------


class TestRouterPolicies:
    def _cluster(self, num_replicas: int = 4, router: str = "round-robin") -> Cluster:
        return Cluster(
            Environment(), EngineConfig(), num_replicas=num_replicas, router=router
        )

    def test_registry_contents(self):
        assert available_router_policies() == [
            "least-loaded",
            "prefix-affinity",
            "round-robin",
            "session-affinity",
        ]

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router policy"):
            create_router_policy("weighted-random")

    def test_round_robin_cycles(self):
        cluster = self._cluster(router="round-robin")
        picks = [
            cluster.router.select(make_request(stream=f"s{n}"), cluster.replicas)
            for n in range(8)
        ]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_least_loaded_prefers_emptiest_replica(self):
        cluster = self._cluster(router="least-loaded")
        # Load replicas 0-2 by submitting through them directly.
        for index in (0, 0, 1, 2):
            cluster.replicas[index].submit(make_request(stream=f"load{index}"))
        assert cluster.router.select(make_request(stream="probe"), cluster.replicas) == 3

    def test_prefix_affinity_is_deterministic_and_sticky(self):
        cluster = self._cluster(router="prefix-affinity")
        first = cluster.router.select(make_request(stream="same"), cluster.replicas)
        again = cluster.router.select(make_request(stream="same"), cluster.replicas)
        assert first == again

    def test_prefix_affinity_spills_under_load(self):
        cluster = self._cluster(router="prefix-affinity")
        request = make_request(stream="hot")
        preferred = cluster.router.select(request, cluster.replicas)
        # Saturate the preferred replica beyond the spill threshold.
        for n in range(cluster.router.spill_threshold + 1):
            cluster.replicas[preferred].submit(make_request(stream=f"fill{n}"))
        spilled = cluster.router.select(make_request(stream="hot"), cluster.replicas)
        assert spilled != preferred

    def test_single_replica_routes_everything_to_it(self):
        for router in available_router_policies():
            cluster = self._cluster(num_replicas=1, router=router)
            for n in range(5):
                cluster.submit(make_request(stream=f"r{n}"))
            assert cluster.routed_counts == [5]

    def test_routing_deterministic_under_fixed_seed(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            replicas=3,
            router="round-robin",
            arrival=ArrivalSpec(process="poisson", qps=3.0, num_requests=9, task_pool_size=6),
            seed=11,
            max_decode_chunk=8,
        )
        first = run_experiment(spec).serving
        second = run_experiment(spec).serving
        assert first.routed_counts == second.routed_counts
        assert sum(first.routed_counts) >= 9
        assert first.latencies == second.latencies


# ---------------------------------------------------------------------------
# Cluster metric aggregation
# ---------------------------------------------------------------------------


class TestClusterAggregation:
    def test_replica_count_validation(self):
        with pytest.raises(ValueError, match="num_replicas"):
            Cluster(Environment(), EngineConfig(), num_replicas=0)

    def test_multi_replica_serving_reports_aggregates(self):
        spec = ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            replicas=2,
            arrival=ArrivalSpec(process="poisson", qps=4.0, num_requests=8, task_pool_size=6),
            max_decode_chunk=8,
        )
        result = run_experiment(spec).serving
        assert result.num_replicas == 2
        assert len(result.routed_counts) == 2
        assert sum(result.routed_counts) >= 8
        assert result.energy_wh > 0
        assert result.kv_max_bytes > 0
        assert 0.0 <= result.prefix_cache_hit_rate <= 1.0


# ---------------------------------------------------------------------------
# Replica pools: classification, cross-pool spill, KV pressure
# ---------------------------------------------------------------------------


def tiny_kv_engine_config(num_blocks: int = 9) -> EngineConfig:
    """An 8B engine whose KV cache holds only ``num_blocks`` blocks."""
    from repro.llm.hardware import ClusterSpec
    from repro.llm.models import LLAMA_3_1_8B

    model = LLAMA_3_1_8B
    target_bytes = model.kv_bytes_per_token * 16 * num_blocks
    utilization = (model.weight_bytes + 2.0e9 + target_bytes) / 40e9
    return EngineConfig(
        model=model,
        cluster=ClusterSpec(gpu_memory_utilization=utilization),
    )


class TestReplicaPools:
    def _two_pool_cluster(self, spill_threshold=2.0, **pool_kwargs):
        from repro.serving import ReplicaPool

        env = Environment()
        pool_a = ReplicaPool(
            env, EngineConfig(), name="a", num_replicas=2,
            router="prefix-affinity", traffic_classes=("a",), **pool_kwargs,
        )
        pool_b = ReplicaPool(
            env, EngineConfig(), name="b", num_replicas=2,
            router="least-loaded", traffic_classes=("b",),
        )
        cluster = Cluster(env, pools=[pool_a, pool_b], pool_spill_threshold=spill_threshold)
        return env, cluster, pool_a, pool_b

    def test_traffic_class_routes_to_claiming_pool(self):
        _, cluster, pool_a, pool_b = self._two_pool_cluster()
        cluster.submit(make_request(stream="x1", priority=0.0))  # untagged -> default
        request = make_request(stream="x2")
        request.metadata["traffic_class"] = "b"
        cluster.submit(request)
        assert request.metadata["pool"] == "b"
        assert sum(pool_b.routed_counts) == 1
        assert sum(pool_a.routed_counts) == 1  # the untagged default

    def test_predicted_decode_length_classification(self):
        from repro.serving import ReplicaPool

        env = Environment()
        short = ReplicaPool(env, EngineConfig(), name="short", max_predicted_decode=32)
        long_pool = ReplicaPool(env, EngineConfig(), name="long")
        cluster = Cluster(env, pools=[short, long_pool], pool_spill_threshold=None)
        small = make_request(stream="s", output_tokens=8)
        big = make_request(stream="l", output_tokens=500)
        cluster.submit(small)
        cluster.submit(big)
        assert small.metadata["pool"] == "short"
        assert big.metadata["pool"] == "long"

    def test_prefix_affinity_sticky_within_pool_then_spills_across_pools(self):
        _, cluster, pool_a, pool_b = self._two_pool_cluster(spill_threshold=2.0)

        def tagged(stream):
            request = make_request(stream=stream)
            request.metadata["traffic_class"] = "a"
            return request

        # Same-prefix requests stick to one replica of the claiming pool.
        first, second = tagged("hot"), tagged("hot")
        cluster.submit(first)
        cluster.submit(second)
        assert first.metadata["pool"] == second.metadata["pool"] == "a"
        assert first.metadata["replica"] == second.metadata["replica"]
        # Keep loading the claiming pool: once it is spill_threshold ahead of
        # pool b (per active replica), overflow crosses pools, and the system
        # settles into balance instead of drowning the preferred pool.
        requests = [tagged(f"fill{index}") for index in range(10)]
        for request in requests:
            cluster.submit(request)
        spilled = [r for r in requests if r.metadata.get("spilled_from") == "a"]
        assert spilled, "expected cross-pool spill under overload"
        assert all(r.metadata["pool"] == "b" for r in spilled)
        assert pool_a.spilled_out == len(spilled)
        assert pool_b.spilled_in == len(spilled)
        # Spill rebalances: the pools end within the threshold of each other.
        assert (
            pool_a.pending_per_active_replica - pool_b.pending_per_active_replica
            <= cluster.pool_spill_threshold + 1
        )

    def test_pinned_pool_never_receives_spill(self):
        from repro.serving import ReplicaPool

        env = Environment()
        pool_a = ReplicaPool(env, EngineConfig(), name="a", traffic_classes=("a",))
        pool_b = ReplicaPool(
            env, EngineConfig(), name="b", traffic_classes=("b",), accepts_spill=False
        )
        cluster = Cluster(env, pools=[pool_a, pool_b], pool_spill_threshold=1.0)
        for index in range(6):
            request = make_request(stream=f"r{index}")
            request.metadata["traffic_class"] = "a"
            cluster.submit(request)
            assert request.metadata["pool"] == "a"
        assert pool_b.spilled_in == 0

    def test_preemption_under_kv_pressure_in_each_pool(self):
        from repro.serving import ReplicaPool

        env = Environment()
        config = tiny_kv_engine_config(num_blocks=9)
        pool_a = ReplicaPool(env, config, name="a", traffic_classes=("a",))
        pool_b = ReplicaPool(env, config, name="b", traffic_classes=("b",))
        cluster = Cluster(env, pools=[pool_a, pool_b], pool_spill_threshold=None)
        events = []
        for label in ("a", "b"):
            for index in range(2):
                request = make_request(
                    prompt_tokens=64, output_tokens=64, stream=f"{label}{index}"
                )
                request.metadata["traffic_class"] = label
                events.append(cluster.submit(request))
        env.run(env.all_of(events))
        # Both pools hit KV pressure independently and recovered.
        assert pool_a.preemption_count >= 1
        assert pool_b.preemption_count >= 1
        assert cluster.preemption_count == (
            pool_a.preemption_count + pool_b.preemption_count
        )
        assert len(cluster.completed_requests) == 4

    def test_replica_seconds_accounting(self):
        from repro.serving import ReplicaPool

        env = Environment()
        pool = ReplicaPool(env, EngineConfig(), name="p", num_replicas=2)
        assert pool.replica_seconds_until(10.0) == pytest.approx(20.0)
        pool.shrink()
        assert pool.num_active == 1
        # The last active replica can never be drained.
        assert pool.shrink() is None
        assert pool.num_active == 1
        # A drained replica stops accruing; growing reuses it with warm-up.
        assert pool.replica_seconds_until(10.0) == pytest.approx(10.0)
        index = pool.grow(warmup_s=5.0)
        assert pool.num_provisioned == 2
        assert pool._active[index] is False  # still warming up
        assert pool.replica_seconds_until(10.0) == pytest.approx(20.0)
        assert [event.action for event in pool.scaling_events] == ["shrink", "grow"]
