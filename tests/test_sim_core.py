"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim import Environment, Interrupt, SimulationError
from repro.sim.core import AllOf, AnyOf, Event, Timeout


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_clock_starts_at_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_peek_empty_queue_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_past_time_raises(self, env):
        env2 = Environment(initial_time=10.0)
        with pytest.raises(SimulationError):
            env2.run(until=5.0)

    def test_run_without_events_returns_none(self, env):
        assert env.run() is None


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        def proc():
            yield env.timeout(3.5)
            return env.now

        result = env.run(env.process(proc()))
        assert result == pytest.approx(3.5)

    def test_zero_delay_timeout_is_valid(self, env):
        def proc():
            yield env.timeout(0.0)
            return "done"

        assert env.run(env.process(proc())) == "done"

    def test_negative_delay_raises(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_timeout_value_is_passed_to_process(self, env):
        def proc():
            value = yield env.timeout(1.0, value="payload")
            return value

        assert env.run(env.process(proc())) == "payload"

    def test_sequential_timeouts_accumulate(self, env):
        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)
            yield env.timeout(3.0)
            return env.now

        assert env.run(env.process(proc())) == pytest.approx(6.0)


class TestEvents:
    def test_event_succeed_delivers_value(self, env):
        event = env.event()

        def waiter():
            value = yield event
            return value

        def trigger():
            yield env.timeout(1.0)
            event.succeed(42)

        process = env.process(waiter())
        env.process(trigger())
        assert env.run(process) == 42

    def test_event_cannot_trigger_twice(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_event_fail_raises_in_waiter(self, env):
        event = env.event()

        def waiter():
            with pytest.raises(ValueError):
                yield event
            return "handled"

        def trigger():
            yield env.timeout(1.0)
            event.fail(ValueError("boom"))

        process = env.process(waiter())
        env.process(trigger())
        assert env.run(process) == "handled"

    def test_fail_requires_exception_instance(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_ok_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_triggered_and_processed_flags(self, env):
        event = env.event()
        assert not event.triggered
        event.succeed("x")
        assert event.triggered
        assert not event.processed
        env.run()
        assert event.processed


class TestProcesses:
    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return "result"

        assert env.run(env.process(proc())) == "result"

    def test_process_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_process_waiting_on_process(self, env):
        def child():
            yield env.timeout(2.0)
            return "child-result"

        def parent():
            result = yield env.process(child())
            return result, env.now

        value, when = env.run(env.process(parent()))
        assert value == "child-result"
        assert when == pytest.approx(2.0)

    def test_yielding_non_event_raises(self, env):
        def proc():
            yield 42  # type: ignore[misc]

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_in_process_propagates_to_waiter(self, env):
        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("inner failure")

        def parent():
            with pytest.raises(RuntimeError):
                yield env.process(failing())
            return "ok"

        assert env.run(env.process(parent())) == "ok"

    def test_unhandled_process_exception_surfaces_from_run(self, env):
        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("kaboom")

        env.process(failing())
        with pytest.raises(RuntimeError, match="kaboom"):
            env.run()

    def test_is_alive_lifecycle(self, env):
        def proc():
            yield env.timeout(1.0)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_interrupt_wakes_process(self, env):
        observed = {}

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                observed["cause"] = interrupt.cause
                observed["time"] = env.now
            return "interrupted"

        def interrupter(target):
            yield env.timeout(2.0)
            target.interrupt(cause="stop now")

        target = env.process(sleeper())
        env.process(interrupter(target))
        assert env.run(target) == "interrupted"
        assert observed["cause"] == "stop now"
        assert observed["time"] == pytest.approx(2.0)

    def test_interrupt_finished_process_is_noop(self, env):
        def quick():
            yield env.timeout(0.5)
            return 1

        process = env.process(quick())
        env.run()
        process.interrupt()  # should not raise
        assert process.value == 1

    def test_two_processes_interleave_in_time_order(self, env):
        order = []

        def proc(name, delay):
            yield env.timeout(delay)
            order.append((name, env.now))

        env.process(proc("slow", 3.0))
        env.process(proc("fast", 1.0))
        env.run()
        assert order == [("fast", 1.0), ("slow", 3.0)]


class TestConditionEvents:
    def test_all_of_waits_for_every_event(self, env):
        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            results = yield AllOf(env, [env.process(child(1, "a")), env.process(child(3, "b"))])
            return results, env.now

        results, when = env.run(env.process(parent()))
        assert when == pytest.approx(3.0)
        assert sorted(results.values()) == ["a", "b"]

    def test_any_of_fires_on_first_event(self, env):
        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            results = yield AnyOf(env, [env.process(child(5, "slow")), env.process(child(1, "fast"))])
            return results, env.now

        results, when = env.run(env.process(parent()))
        assert when == pytest.approx(1.0)
        assert "fast" in results.values()

    def test_all_of_with_already_triggered_events(self, env):
        timeout_a = env.timeout(0.0, value="x")
        timeout_b = env.timeout(0.0, value="y")

        def parent():
            yield env.timeout(1.0)
            results = yield AllOf(env, [timeout_a, timeout_b])
            return results

        results = env.run(env.process(parent()))
        assert set(results.values()) == {"x", "y"}

    def test_env_helpers_build_condition_events(self, env):
        events = [env.timeout(1.0), env.timeout(2.0)]
        assert isinstance(env.all_of(events), AllOf)
        assert isinstance(env.any_of(events), AnyOf)

    def test_all_of_preserves_index_order(self, env):
        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            processes = [env.process(child(3 - i, i)) for i in range(3)]
            results = yield env.all_of(processes)
            return [results[i] for i in sorted(results)]

        assert env.run(env.process(parent())) == [0, 1, 2]


class TestRunUntil:
    def test_run_until_time_stops_clock_at_that_time(self, env):
        def proc():
            for _ in range(10):
                yield env.timeout(1.0)

        env.process(proc())
        env.run(until=3.5)
        assert env.now == pytest.approx(3.5)

    def test_run_until_event(self, env):
        def proc():
            yield env.timeout(2.0)
            return "finished"

        process = env.process(proc())
        assert env.run(until=process) == "finished"

    def test_run_until_untriggered_event_raises(self, env):
        event = env.event()

        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run(until=event)

    def test_queue_drains_before_numeric_until_lands_clock_on_until(self, env):
        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        env.run(until=7.25)
        # The last event fires at t=1.0; the caller asked for t=7.25, so the
        # clock must land exactly there (not on the last event time).
        assert env.now == 7.25

    def test_drained_until_is_exact_and_resumable(self, env):
        env.run(until=2.5)
        assert env.now == 2.5
        # A later run from the drained state starts from the advanced clock.
        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        env.run()
        assert env.now == 3.5

    def test_events_processed_counts_every_step(self, env):
        def proc():
            for _ in range(5):
                yield env.timeout(1.0)

        env.process(proc())
        env.run()
        # Process start event, five timeouts, and the process-end event.
        assert env.events_processed == 7
