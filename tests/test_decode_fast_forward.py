"""Bit-for-bit equivalence of exact decode fast-forwarding.

``EngineConfig.decode_fast_forward`` collapses runs of per-token decode steps
into one simulated event and replays the per-token bookkeeping.  These tests
run identical scenarios with the flag on and off and require *byte-identical*
outcomes -- every step record, every per-request timing float, every energy
and KV statistic -- under idle decode, mid-decode arrivals, and KV-pressure
preemption.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.llm import EngineConfig, LLMClient, LLMEngine
from repro.llm.prefix_cache import PrefixCache
from repro.llm.request import reset_request_ids
from repro.llm.tokenizer import Prompt, SegmentKind
from repro.sim import Environment

from tests.test_cluster_and_policies import tiny_kv_engine_config


def run_scenario(config: EngineConfig, script, fast_forward: bool):
    """Run ``script`` against a fresh engine; returns (env, engine)."""
    reset_request_ids()
    env = Environment()
    engine = LLMEngine(
        env, dataclasses.replace(config, decode_fast_forward=fast_forward)
    )
    client = LLMClient(env, engine)
    script(env, engine, client)
    env.run()
    return env, engine


def assert_bit_identical(config: EngineConfig, script):
    env_fast, fast = run_scenario(config, script, fast_forward=True)
    env_ref, ref = run_scenario(config, script, fast_forward=False)

    assert env_fast.now == env_ref.now
    assert len(fast.completed_requests) == len(ref.completed_requests)
    for a, b in zip(fast.completed_requests, ref.completed_requests):
        assert a.request_id == b.request_id
        assert a.output_token_ids == b.output_token_ids
        assert a.timings.arrival == b.timings.arrival
        assert a.timings.prefill_time == b.timings.prefill_time
        assert a.timings.decode_time == b.timings.decode_time
        assert a.timings.finished == b.timings.finished
        assert a.num_cached_tokens == b.num_cached_tokens
    assert fast.step_records == ref.step_records
    assert fast.energy.joules_by_state == ref.energy.joules_by_state
    assert fast.energy.seconds_by_state == ref.energy.seconds_by_state
    assert fast.runtime_breakdown() == ref.runtime_breakdown()
    assert fast.kv_memory_stats() == ref.kv_memory_stats()
    assert fast.total_generated_tokens == ref.total_generated_tokens
    assert fast.kv_cache.hit_rate() == ref.kv_cache.hit_rate()
    assert (
        fast.kv_cache.allocator.eviction_count == ref.kv_cache.allocator.eviction_count
    )
    # The fast path must actually have fast-forwarded: strictly fewer events.
    assert env_fast.events_processed < env_ref.events_processed


def user_prompt(engine: LLMEngine, stream: str, tokens: int) -> Prompt:
    prompt = Prompt()
    prompt.append(engine.tokenizer.span(SegmentKind.USER, stream, tokens))
    return prompt


class TestFastForwardEquivalence:
    def test_single_request(self):
        def script(env, engine, client):
            def proc():
                yield client.generate(user_prompt(engine, "solo", 200), output_tokens=150)

            env.process(proc())

        assert_bit_identical(EngineConfig(), script)

    def test_concurrent_batch(self):
        def script(env, engine, client):
            def proc(index):
                yield client.generate(
                    user_prompt(engine, f"batch{index}", 120 + 16 * index),
                    output_tokens=90 + 11 * index,
                )

            for index in range(5):
                env.process(proc(index))

        assert_bit_identical(EngineConfig(), script)

    def test_mid_decode_arrivals_bound_the_chunk(self):
        def script(env, engine, client):
            def early():
                yield client.generate(user_prompt(engine, "early", 150), output_tokens=300)

            def late(index, delay):
                yield env.timeout(delay)
                yield client.generate(
                    user_prompt(engine, f"late{index}", 90), output_tokens=40
                )

            env.process(early())
            # Arrivals land strictly inside the long decode; the fast path
            # must stop each chunk at the arrival to admit the newcomer at
            # the same step the per-token path does.
            for index, delay in enumerate((0.7, 1.3, 2.9)):
                env.process(late(index, delay))

        assert_bit_identical(EngineConfig(), script)

    def test_kv_pressure_preemption(self):
        config = tiny_kv_engine_config(num_blocks=40)

        def script(env, engine, client):
            def proc(index):
                yield client.generate(
                    user_prompt(engine, f"pressure{index}", 96), output_tokens=180
                )

            for index in range(3):
                env.process(proc(index))

        env_fast, fast = run_scenario(config, script, fast_forward=True)
        assert fast.scheduler.preemption_count > 0, "scenario must actually preempt"
        assert_bit_identical(config, script)

    def test_prefix_cache_reuse_across_calls(self):
        def script(env, engine, client):
            def proc():
                first = yield client.generate(
                    user_prompt(engine, "shared", 400), output_tokens=64
                )
                prompt = Prompt()
                prompt.append(engine.tokenizer.span(SegmentKind.USER, "shared", 400))
                prompt.append(
                    engine.tokenizer.span(SegmentKind.LLM_HISTORY, "turn2", 64)
                )
                yield client.generate(prompt, output_tokens=64)
                return first

            env.process(proc())

        assert_bit_identical(EngineConfig(), script)


class TestChunkedDecodeKVClamp:
    def test_chunk_reservations_always_fit_free_pool(self, monkeypatch):
        """Approximate chunking must clamp the chunk to KV headroom.

        The chunk reserves ``chunk`` tokens of KV growth per running request
        up front; ``_decode_chunk_size`` clamps the chunk so that the total
        growth fits the free pool.  A reservation that comes back ``False``
        would mean tokens were simulated without KV backing.
        """
        config = dataclasses.replace(
            tiny_kv_engine_config(num_blocks=40), max_decode_chunk=8
        )
        reservations = []
        original = PrefixCache.reserve_tokens

        def checked(self, request, num_tokens, now=0.0):
            ok = original(self, request, num_tokens, now=now)
            reservations.append(ok)
            return ok

        monkeypatch.setattr(PrefixCache, "reserve_tokens", checked)

        reset_request_ids()
        env = Environment()
        engine = LLMEngine(env, config)
        client = LLMClient(env, engine)

        def proc(index):
            result = yield client.generate(
                user_prompt(engine, f"clamp{index}", 96), output_tokens=180
            )
            return result

        processes = [env.process(proc(index)) for index in range(3)]
        env.run()
        assert all(process.value.output_tokens == 180 for process in processes)
        assert reservations, "chunked path never engaged"
        assert all(reservations), "a chunk reservation exceeded KV headroom"
