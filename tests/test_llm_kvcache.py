"""Tests for the paged KV-cache block allocator and prefix cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import KVCacheConfig, BlockAllocator, PrefixCache
from repro.llm.kvcache import KVCacheOutOfMemory
from repro.llm.models import LLAMA_3_1_8B
from repro.llm.hardware import cluster_for_model
from repro.llm.request import LLMRequest, SamplingParams
from repro.llm.tokenizer import Prompt, SegmentKind, SyntheticTokenizer

TOKENIZER = SyntheticTokenizer()


def small_config(num_blocks: int = 64, enable_prefix_caching: bool = True) -> KVCacheConfig:
    return KVCacheConfig(
        block_size=16,
        num_blocks=num_blocks,
        bytes_per_block=16 * LLAMA_3_1_8B.kv_bytes_per_token,
        enable_prefix_caching=enable_prefix_caching,
    )


def make_request(prompt_tokens: int, output_tokens: int = 8, stream: str = "req") -> LLMRequest:
    prompt = Prompt()
    prompt.append(TOKENIZER.span(SegmentKind.USER, stream, prompt_tokens))
    return LLMRequest(prompt=prompt, sampling=SamplingParams(output_tokens=output_tokens))


class TestKVCacheConfig:
    def test_from_hardware_produces_sane_block_count(self):
        config = KVCacheConfig.from_hardware(LLAMA_3_1_8B, cluster_for_model(LLAMA_3_1_8B))
        # ~18 GB of KV space at 128 KiB/token and 16-token blocks -> thousands of blocks.
        assert 2000 < config.num_blocks < 20000

    def test_zero_blocks_rejected_by_allocator(self):
        with pytest.raises(ValueError):
            BlockAllocator(KVCacheConfig(block_size=16, num_blocks=0, bytes_per_block=1.0))


class TestBlockAllocator:
    def test_allocate_and_free_counts(self):
        allocator = BlockAllocator(small_config(16))
        blocks = allocator.allocate(4)
        assert len(blocks) == 4
        assert allocator.num_active_blocks == 4
        assert allocator.num_free_blocks == 12
        for block_id in blocks:
            allocator.release(block_id)
        assert allocator.num_active_blocks == 0
        assert allocator.num_free_blocks == 16

    def test_allocate_too_many_raises(self):
        allocator = BlockAllocator(small_config(8))
        with pytest.raises(KVCacheOutOfMemory):
            allocator.allocate(9)

    def test_negative_allocation_raises(self):
        allocator = BlockAllocator(small_config(8))
        with pytest.raises(ValueError):
            allocator.allocate(-1)

    def test_release_unreferenced_block_raises(self):
        allocator = BlockAllocator(small_config(8))
        with pytest.raises(ValueError):
            allocator.release(0)

    def test_cached_blocks_stay_evictable_after_release(self):
        allocator = BlockAllocator(small_config(8))
        block_id = allocator.allocate(1)[0]
        allocator.register_hash(block_id, content_hash=123)
        allocator.release(block_id)
        # The block is reusable both as a cached block and as free capacity.
        assert allocator.lookup_hash(123) == block_id
        assert allocator.num_free_blocks == 8

    def test_without_prefix_caching_release_forgets_hash(self):
        allocator = BlockAllocator(small_config(8, enable_prefix_caching=False))
        block_id = allocator.allocate(1)[0]
        allocator.register_hash(block_id, content_hash=123)
        allocator.release(block_id)
        assert allocator.lookup_hash(123) is None

    def test_eviction_removes_hash_mapping(self):
        allocator = BlockAllocator(small_config(4))
        blocks = allocator.allocate(4)
        for index, block_id in enumerate(blocks):
            allocator.register_hash(block_id, content_hash=1000 + index)
            allocator.release(block_id)
        # Cache full of evictable blocks; allocating forces LRU eviction.
        allocator.allocate(2)
        assert allocator.eviction_count == 2
        assert allocator.cached_block_count() == 2

    def test_lru_eviction_order(self):
        allocator = BlockAllocator(small_config(3))
        blocks = allocator.allocate(3)
        for index, block_id in enumerate(blocks):
            allocator.register_hash(block_id, content_hash=index)
            allocator.release(block_id, now=float(index))
        allocator.allocate(1)
        # Block released earliest (hash 0) must have been evicted first.
        assert allocator.lookup_hash(0) is None
        assert allocator.lookup_hash(1) is not None

    def test_acquire_increments_refcount_of_cached_block(self):
        allocator = BlockAllocator(small_config(4))
        block_id = allocator.allocate(1)[0]
        allocator.register_hash(block_id, content_hash=5)
        allocator.release(block_id)
        allocator.acquire(block_id)
        assert allocator.ref_count(block_id) == 1
        assert allocator.num_active_blocks == 1

    def test_shared_block_refcounting(self):
        allocator = BlockAllocator(small_config(4))
        block_id = allocator.allocate(1)[0]
        allocator.acquire(block_id)
        assert allocator.ref_count(block_id) == 2
        allocator.release(block_id)
        assert allocator.num_active_blocks == 1
        allocator.release(block_id)
        assert allocator.num_active_blocks == 0

    def test_active_bytes_tracks_blocks(self):
        config = small_config(8)
        allocator = BlockAllocator(config)
        allocator.allocate(3)
        assert allocator.active_bytes == pytest.approx(3 * config.bytes_per_block)

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_allocate_release_never_leaks(self, sizes):
        allocator = BlockAllocator(small_config(128))
        held = []
        for size in sizes:
            held.append(allocator.allocate(size))
        for blocks in held:
            for block_id in blocks:
                allocator.release(block_id)
        assert allocator.num_active_blocks == 0
        assert allocator.num_free_blocks == 128


class TestPrefixCache:
    def test_allocation_assigns_blocks_and_no_cache_hit_first_time(self):
        cache = PrefixCache(small_config(64))
        request = make_request(100)
        allocation = cache.allocate_sequence(request)
        assert allocation is not None
        assert allocation.num_cached_tokens == 0
        assert len(allocation.block_ids) == 7  # ceil(100 / 16)

    def test_second_identical_request_hits_cache(self):
        cache = PrefixCache(small_config(64))
        first = make_request(100, stream="shared")
        cache.allocate_sequence(first)
        cache.free_sequence(first)
        second = make_request(100, stream="shared")
        allocation = cache.allocate_sequence(second)
        # All full blocks except the mandatory last-token block are reused.
        assert allocation.num_cached_tokens == 96

    def test_cache_hit_on_growing_context(self):
        cache = PrefixCache(small_config(64))
        tokenizer = TOKENIZER
        base = Prompt()
        base.append(tokenizer.span(SegmentKind.INSTRUCTION, "grow", 64))
        first = LLMRequest(prompt=base.copy(), sampling=SamplingParams(output_tokens=4))
        cache.allocate_sequence(first)
        cache.free_sequence(first)

        extended = base.copy()
        extended.append(tokenizer.span(SegmentKind.TOOL_HISTORY, "obs", 64))
        second = LLMRequest(prompt=extended, sampling=SamplingParams(output_tokens=4))
        allocation = cache.allocate_sequence(second)
        assert allocation.num_cached_tokens == 64

    def test_disabled_cache_never_hits(self):
        cache = PrefixCache(small_config(64, enable_prefix_caching=False))
        first = make_request(100, stream="shared")
        cache.allocate_sequence(first)
        cache.free_sequence(first)
        second = make_request(100, stream="shared")
        allocation = cache.allocate_sequence(second)
        assert allocation.num_cached_tokens == 0
        assert cache.hit_rate() == 0.0

    def test_peek_cached_tokens_has_no_side_effects(self):
        cache = PrefixCache(small_config(64))
        first = make_request(100, stream="shared")
        cache.allocate_sequence(first)
        cache.free_sequence(first)
        second = make_request(100, stream="shared")
        peeked = cache.peek_cached_tokens(second.prompt_token_ids)
        assert peeked == 96
        assert cache.active_blocks() == 0

    def test_allocation_fails_when_cache_too_small(self):
        cache = PrefixCache(small_config(4))
        request = make_request(200)
        assert cache.allocate_sequence(request) is None

    def test_append_token_allocates_new_block_on_boundary(self):
        cache = PrefixCache(small_config(64))
        request = make_request(16, output_tokens=2)
        cache.allocate_sequence(request)
        blocks_before = len(request.block_ids)
        assert cache.append_token(request) is True
        assert len(request.block_ids) == blocks_before + 1

    def test_append_token_fails_when_full(self):
        cache = PrefixCache(small_config(1))
        request = make_request(16, output_tokens=2)
        cache.allocate_sequence(request)
        assert cache.append_token(request) is False

    def test_free_sequence_releases_blocks(self):
        cache = PrefixCache(small_config(64))
        request = make_request(100)
        cache.allocate_sequence(request)
        assert cache.active_blocks() > 0
        cache.free_sequence(request)
        assert cache.active_blocks() == 0
        assert request.block_ids == []

    def test_double_allocate_same_request_raises(self):
        cache = PrefixCache(small_config(64))
        request = make_request(50)
        cache.allocate_sequence(request)
        with pytest.raises(ValueError):
            cache.allocate_sequence(request)

    def test_hit_rate_accumulates(self):
        cache = PrefixCache(small_config(64))
        for _ in range(3):
            request = make_request(96, stream="repeat")
            cache.allocate_sequence(request)
            cache.free_sequence(request)
        assert 0.4 < cache.hit_rate() < 1.0

    def test_shared_prefix_counted_once_in_active_bytes(self):
        cache = PrefixCache(small_config(64))
        first = make_request(96, stream="shared")
        second = make_request(96, stream="shared")
        cache.allocate_sequence(first)
        active_after_first = cache.active_blocks()
        cache.allocate_sequence(second)
        # The second request adds only its private last block.
        assert cache.active_blocks() == active_after_first + 1
