"""Admission-order policy contracts: determinism pin and vtc behaviour.

Pins the determinism contract documented on
:meth:`~repro.llm.scheduler.SchedulingPolicy.select_index`: comparison
policies scan from index 0 and replace the incumbent only on a strict
win, so all-equal scores reproduce FCFS exactly.  Also covers the
virtual-token-counter policy: counter accounting through the
on_scheduled/on_complete hooks, lazy newcomer joining, tenant-key
fallback, and least-served-first selection.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.llm import Prompt, SamplingParams
from repro.llm.request import LLMRequest
from repro.llm.scheduler import (
    FCFSPolicy,
    PriorityPolicy,
    ShortestJobPolicy,
    VirtualTokenCounterPolicy,
    create_scheduler_policy,
)
from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer

TOKENIZER = SyntheticTokenizer()


def make_request(
    prompt_tokens: int = 32,
    output_tokens: int = 16,
    stream: str = "req",
    metadata: dict | None = None,
) -> LLMRequest:
    prompt = Prompt()
    prompt.append(TOKENIZER.span(SegmentKind.USER, stream, prompt_tokens))
    return LLMRequest(
        prompt=prompt,
        sampling=SamplingParams(output_tokens=output_tokens),
        metadata=metadata,
    )


class TestDeterminismContract:
    """All-equal scores must reproduce FCFS: strict-win scans from index 0."""

    def _drain(self, policy, requests):
        waiting = deque(requests)
        order = []
        while waiting:
            index = policy.select_index(waiting, now=0.0)
            order.append(waiting[index])
            del waiting[index]
        return order

    def test_priority_all_equal_is_fcfs(self):
        requests = [make_request(stream=f"r{i}") for i in range(6)]
        assert self._drain(PriorityPolicy(), list(requests)) == requests

    def test_sjf_all_equal_is_fcfs(self):
        # Identical predicted decode lengths -> arrival order preserved.
        requests = [
            make_request(stream=f"r{i}", output_tokens=16) for i in range(6)
        ]
        assert self._drain(ShortestJobPolicy(), list(requests)) == requests

    def test_vtc_all_equal_is_fcfs(self):
        # One shared tenant key (no metadata) -> every counter identical.
        requests = [make_request(stream=f"r{i}") for i in range(6)]
        assert self._drain(VirtualTokenCounterPolicy(), list(requests)) == requests

    def test_vtc_equal_counters_across_tenants_is_fcfs(self):
        requests = [
            make_request(stream=f"r{i}", metadata={"tenant": f"u{i}"})
            for i in range(6)
        ]
        assert self._drain(VirtualTokenCounterPolicy(), list(requests)) == requests

    def test_priority_strict_win_required(self):
        # The LAST highest-priority request must not displace the first.
        requests = [
            make_request(stream="a", metadata={"priority": 1.0}),
            make_request(stream="b", metadata={"priority": 1.0}),
            make_request(stream="c", metadata={"priority": 0.0}),
        ]
        assert PriorityPolicy().select_index(deque(requests), 0.0) == 0


class TestVirtualTokenCounter:
    def test_registered(self):
        assert isinstance(create_scheduler_policy("vtc"), VirtualTokenCounterPolicy)

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="weights"):
            VirtualTokenCounterPolicy(input_weight=-1.0)

    def test_least_served_tenant_goes_first(self):
        policy = VirtualTokenCounterPolicy()
        whale = make_request(prompt_tokens=64, stream="w", metadata={"tenant": "whale"})
        tail = make_request(prompt_tokens=8, stream="t", metadata={"tenant": "tail"})
        policy.on_scheduled(tail, 0.0)  # tail charged 8 tokens of prefill
        policy.on_scheduled(whale, 0.0)  # whale joins at 8, charged 64 more
        waiting = deque(
            [
                make_request(stream="w2", metadata={"tenant": "whale"}),
                make_request(stream="t2", metadata={"tenant": "tail"}),
            ]
        )
        assert policy.select_index(waiting, 1.0) == 1  # tail has the lower counter

    def test_counters_charge_input_and_output(self):
        policy = VirtualTokenCounterPolicy(input_weight=1.0, output_weight=2.0)
        request = make_request(prompt_tokens=10, stream="x", metadata={"tenant": "u1"})
        policy.on_scheduled(request, 0.0)
        assert policy.counters["u1"] == pytest.approx(10.0)
        request.output_token_ids.extend([1, 2, 3])
        policy.on_complete(request, 1.0)
        assert policy.counters["u1"] == pytest.approx(10.0 + 2.0 * 3)

    def test_newcomer_joins_at_live_minimum(self):
        policy = VirtualTokenCounterPolicy()
        policy.counters.update({"a": 100.0, "b": 40.0})
        fresh = make_request(stream="f", metadata={"tenant": "fresh"})
        waiting = deque(
            [make_request(stream="a2", metadata={"tenant": "a"}), fresh]
        )
        assert policy.select_index(waiting, 0.0) == 1
        # Joined at min(100, 40), not zero: no unbounded idle credit.
        assert policy.counters["fresh"] == pytest.approx(40.0)

    def test_traffic_class_fallback(self):
        policy = VirtualTokenCounterPolicy()
        request = make_request(stream="c", metadata={"traffic_class": "chat"})
        policy.on_scheduled(request, 0.0)
        assert "chat" in policy.counters

    def test_preemption_recharges_prefill(self):
        policy = VirtualTokenCounterPolicy(input_weight=1.0, output_weight=0.0)
        request = make_request(prompt_tokens=10, stream="p", metadata={"tenant": "u"})
        policy.on_scheduled(request, 0.0)
        policy.on_scheduled(request, 1.0)  # re-admission after preemption
        assert policy.counters["u"] == pytest.approx(20.0)
