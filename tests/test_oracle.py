"""Tests for the calibration tables, accuracy model, and behaviour oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oracle import (
    AGENT_PROFILES,
    BENCHMARK_PROFILES,
    MODEL_QUALITY,
    TaskOracle,
    answer_success_probability,
    few_shot_gain,
    get_agent_profile,
    get_benchmark_profile,
    get_model_quality,
    parallel_candidate_boost,
    reflection_gain,
    step_success_probability,
)
from repro.sim import RandomStream


class TestCalibrationTables:
    def test_all_paper_benchmarks_present(self):
        for name in ("hotpotqa", "webshop", "math", "humaneval", "sharegpt"):
            assert name in BENCHMARK_PROFILES

    def test_all_paper_agents_present(self):
        for name in ("cot", "react", "reflexion", "lats", "llmcompiler", "chatbot"):
            assert name in AGENT_PROFILES

    def test_lookup_is_case_insensitive(self):
        assert get_benchmark_profile("HotpotQA").name == "hotpotqa"
        assert get_agent_profile("ReAct").name == "react"

    def test_unknown_lookups_raise(self):
        with pytest.raises(KeyError):
            get_benchmark_profile("triviaqa")
        with pytest.raises(KeyError):
            get_agent_profile("autogen")
        with pytest.raises(KeyError):
            get_model_quality("mistral-7b")

    def test_model_quality_by_size_alias(self):
        assert get_model_quality("llama-3.1-8b-instruct").step_quality == 1.0
        assert get_model_quality("70b").step_quality > 1.0

    def test_70b_is_strictly_better_than_8b(self):
        small = MODEL_QUALITY["llama-3.1-8b-instruct"]
        large = MODEL_QUALITY["llama-3.1-70b-instruct"]
        assert large.step_quality > small.step_quality
        assert large.answer_quality > small.answer_quality

    def test_tool_latency_calibration_matches_paper(self):
        # Wikipedia calls average ~1.2 s, WebShop ~20 ms (paper Section IV-A).
        assert BENCHMARK_PROFILES["hotpotqa"].tool_latency.mean == pytest.approx(1.2)
        assert BENCHMARK_PROFILES["webshop"].tool_latency.mean == pytest.approx(0.02)

    def test_humaneval_tool_uses_gpu(self):
        assert BENCHMARK_PROFILES["humaneval"].tool_uses_gpu
        assert not BENCHMARK_PROFILES["hotpotqa"].tool_uses_gpu

    def test_llmcompiler_is_penalised_on_webshop(self):
        profile = AGENT_PROFILES["llmcompiler"]
        assert profile.step_factor_for("webshop") < profile.step_factor_for("hotpotqa")

    def test_probabilities_are_valid(self):
        for profile in BENCHMARK_PROFILES.values():
            assert 0 < profile.base_step_prob <= 1
            assert 0 < profile.base_answer_prob <= 1
            assert 0 <= profile.guess_prob <= 1
            assert profile.solution_depth_range[0] >= 1
            assert profile.solution_depth_range[1] >= profile.solution_depth_range[0]


class TestAccuracyModel:
    def _probability(self, **overrides):
        defaults = dict(
            benchmark=get_benchmark_profile("hotpotqa"),
            agent=get_agent_profile("react"),
            model=get_model_quality("8b"),
            difficulty=0.5,
            num_few_shot=2,
            reflection_round=0,
            num_candidates=1,
        )
        defaults.update(overrides)
        return step_success_probability(**defaults)

    def test_step_probability_within_bounds(self):
        assert 0.02 <= self._probability() <= 0.97

    def test_harder_tasks_have_lower_step_probability(self):
        assert self._probability(difficulty=0.9) < self._probability(difficulty=0.1)

    def test_bigger_model_has_higher_step_probability(self):
        assert self._probability(model=get_model_quality("70b")) > self._probability()

    def test_few_shot_gain_saturates(self):
        gains = [few_shot_gain(n) for n in range(0, 9)]
        assert gains[0] < 0  # zero-shot penalty
        assert gains[2] > gains[1] > gains[0]
        assert gains[8] < gains[4]  # prompt overload eventually hurts

    def test_reflection_gain_monotone_and_capped(self):
        values = [reflection_gain(round_index) for round_index in range(0, 12)]
        assert values[0] == 0.0
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert max(values) <= 0.22 + 1e-9

    def test_parallel_candidate_boost_monotone(self):
        probabilities = [parallel_candidate_boost(0.3, n) for n in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(probabilities, probabilities[1:]))
        assert probabilities[0] == pytest.approx(0.3)

    def test_parallel_candidate_boost_sublinear(self):
        # 4 correlated candidates are worse than 4 independent tries.
        independent = 1 - (1 - 0.3) ** 4
        assert parallel_candidate_boost(0.3, 4) < independent

    def test_answer_probability_unsolved_is_guess_level(self):
        probability = answer_success_probability(
            benchmark=get_benchmark_profile("hotpotqa"),
            agent=get_agent_profile("react"),
            model=get_model_quality("8b"),
            difficulty=0.5,
            solved=False,
        )
        assert probability <= 0.3

    def test_answer_probability_respects_asymptote(self):
        probability = answer_success_probability(
            benchmark=get_benchmark_profile("hotpotqa"),
            agent=get_agent_profile("lats"),
            model=get_model_quality("70b"),
            difficulty=0.0,
            solved=True,
            num_candidates=64,
        )
        assert probability <= get_agent_profile("lats").answer_asymptote + 1e-9

    def test_answer_probability_solved_beats_unsolved(self):
        kwargs = dict(
            benchmark=get_benchmark_profile("math"),
            agent=get_agent_profile("react"),
            model=get_model_quality("8b"),
            difficulty=0.4,
        )
        assert answer_success_probability(solved=True, **kwargs) > answer_success_probability(
            solved=False, **kwargs
        )

    @given(
        difficulty=st.floats(0.0, 1.0),
        few_shot=st.integers(0, 8),
        reflections=st.integers(0, 10),
        candidates=st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_step_probability_always_a_probability(self, difficulty, few_shot, reflections, candidates):
        probability = step_success_probability(
            benchmark=get_benchmark_profile("webshop"),
            agent=get_agent_profile("lats"),
            model=get_model_quality("70b"),
            difficulty=difficulty,
            num_few_shot=few_shot,
            reflection_round=reflections,
            num_candidates=candidates,
        )
        assert 0.0 <= probability <= 1.0


def make_oracle(agent="react", benchmark="hotpotqa", model="8b", difficulty=0.5, depth=2, seed=5):
    return TaskOracle(
        difficulty=difficulty,
        solution_depth=depth,
        benchmark=get_benchmark_profile(benchmark),
        agent=get_agent_profile(agent),
        model=get_model_quality(model),
        num_few_shot=2,
        stream=RandomStream(seed, "oracle-test"),
    )


class TestTaskOracle:
    def test_invalid_solution_depth_rejected(self):
        with pytest.raises(ValueError):
            make_oracle(depth=0)

    def test_progress_accumulates_until_solved(self):
        oracle = make_oracle(depth=2)
        for _ in range(100):
            if oracle.solved:
                break
            oracle.attempt_step()
        assert oracle.solved
        assert oracle.progress == 2

    def test_progress_never_exceeds_depth(self):
        oracle = make_oracle(depth=2)
        for _ in range(50):
            oracle.attempt_step()
        assert oracle.progress <= oracle.solution_depth

    def test_judge_final_answer_is_deterministic_per_task(self):
        oracle = make_oracle()
        oracle.progress = oracle.solution_depth
        first = oracle.judge_final_answer()
        assert all(oracle.judge_final_answer() == first for _ in range(5))

    def test_more_candidates_never_hurt_the_answer(self):
        oracle = make_oracle()
        oracle.progress = oracle.solution_depth
        if oracle.judge_final_answer(num_candidates=1):
            assert oracle.judge_final_answer(num_candidates=8)

    def test_reset_trial_clears_progress_but_not_reflections(self):
        oracle = make_oracle()
        oracle.attempt_step()
        oracle.note_reflection()
        oracle.reset_trial()
        assert oracle.progress == 0
        assert oracle.reflection_round == 1
        assert oracle.trials_started == 2

    def test_reflections_raise_step_probability(self):
        oracle = make_oracle()
        before = oracle.step_probability()
        oracle.note_reflection()
        oracle.note_reflection()
        assert oracle.step_probability() > before

    def test_sample_output_tokens_known_roles(self):
        oracle = make_oracle()
        for role in TaskOracle.ROLES:
            assert oracle.sample_output_tokens(role) >= 1

    def test_sample_output_tokens_unknown_role_raises(self):
        with pytest.raises(KeyError):
            make_oracle().sample_output_tokens("poetry")

    def test_tool_latency_and_observation_positive(self):
        oracle = make_oracle()
        assert oracle.sample_tool_latency() >= 0
        assert oracle.sample_tool_observation_tokens() >= 1

    def test_score_full_for_correct(self):
        oracle = make_oracle()
        assert oracle.score(True) == 1.0

    def test_webshop_partial_credit_when_solved_but_wrong(self):
        oracle = make_oracle(benchmark="webshop", depth=1)
        oracle.progress = 1
        assert oracle.score(False) == pytest.approx(0.35)

    def test_no_credit_when_unsolved_and_wrong(self):
        oracle = make_oracle()
        assert oracle.score(False) == 0.0

    def test_evaluator_mostly_detects_wrong_answers(self):
        detections = []
        for seed in range(300):
            oracle = make_oracle(seed=seed)
            detections.append(oracle.evaluator_detects_failure(answer_correct=False))
        rate = sum(detections) / len(detections)
        assert 0.85 < rate < 0.98

    def test_evaluator_rarely_flags_correct_answers(self):
        detections = []
        for seed in range(300):
            oracle = make_oracle(seed=seed)
            detections.append(oracle.evaluator_detects_failure(answer_correct=True))
        rate = sum(detections) / len(detections)
        assert rate < 0.2

    def test_accuracy_improves_with_model_size(self):
        def accuracy(model):
            correct = 0
            for seed in range(300):
                oracle = make_oracle(model=model, seed=seed, difficulty=0.5)
                oracle.progress = oracle.solution_depth
                correct += oracle.judge_final_answer()
            return correct / 300

        assert accuracy("70b") > accuracy("8b")
